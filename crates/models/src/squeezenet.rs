//! SqueezeNet (Iandola et al. 2016), CIFAR-sized, with Winograd-swappable
//! expand-3×3 convolutions — the Table 4 architecture. It has 8 swappable
//! 3×3 layers (one per fire module), which the paper credits for its
//! milder INT8/F4 degradation versus ResNet-18's 16.

use wa_core::{ConvAlgo, ConvLayer};
use wa_nn::{
    BatchNorm2d, Conv2d, Infer, Layer, Param, QuantConfig, QuantStateMut, Tape, Var, WaError,
};
use wa_tensor::SeededRng;

use crate::common::{
    bn, conv1x1, convert_convs, scale_width, stem_conv3x3, swappable_conv, ConvNet,
};
use crate::spec::ModelSpec;

/// Fire module: 1×1 squeeze, then parallel 1×1 and 3×3 expands,
/// channel-concatenated. Only the 3×3 expand is Winograd-swappable.
struct Fire {
    squeeze: Conv2d,
    expand1: Conv2d,
    expand3: ConvLayer,
}

impl Fire {
    fn new(
        name: &str,
        in_ch: usize,
        squeeze_ch: usize,
        expand_ch: usize,
        quant: QuantConfig,
        rng: &mut SeededRng,
    ) -> Result<Fire, WaError> {
        Ok(Fire {
            squeeze: conv1x1(
                &format!("{name}.squeeze"),
                in_ch,
                squeeze_ch,
                true,
                quant,
                rng,
            )?,
            expand1: conv1x1(
                &format!("{name}.expand1"),
                squeeze_ch,
                expand_ch,
                true,
                quant,
                rng,
            )?,
            expand3: swappable_conv(
                &format!("{name}.expand3"),
                squeeze_ch,
                expand_ch,
                3,
                1,
                quant,
                rng,
            )?,
        })
    }

    fn out_channels(&self) -> usize {
        self.expand1.out_channels() * 2
    }

    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var {
        let s = self.squeeze.forward(tape, x, train);
        let s = tape.relu(s);
        let e1 = self.expand1.forward(tape, s, train);
        let e3 = self.expand3.forward(tape, s, train);
        let cat = tape.concat_chan(&[e1, e3]);
        tape.relu(cat)
    }

    /// Read-only (eval-mode) forward for the batched-inference path.
    fn infer(&self, tape: &mut Tape, x: Var) -> Result<Var, WaError> {
        let s = self.squeeze.infer(tape, x)?;
        let s = tape.relu(s);
        let e1 = self.expand1.infer(tape, s)?;
        let e3 = self.expand3.infer(tape, s)?;
        let cat = tape.concat_chan(&[e1, e3]);
        Ok(tape.relu(cat))
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.squeeze.visit_params(f);
        self.expand1.visit_params(f);
        self.expand3.visit_params(f);
    }

    fn reset_statistics(&mut self) {
        self.squeeze.reset_statistics();
        self.expand1.reset_statistics();
        self.expand3.reset_statistics();
    }

    fn visit_quant_state(&mut self, f: &mut dyn FnMut(&str, QuantStateMut<'_>)) {
        self.squeeze.visit_quant_state(f);
        self.expand1.visit_quant_state(f);
        self.expand3.visit_quant_state(f);
    }
}

/// CIFAR-sized SqueezeNet: 3×3 stem, eight fire modules with two
/// max-pool stages, 1×1 classifier conv and global average pooling.
///
/// # Example
///
/// ```
/// use wa_models::{ConvNet, ModelSpec, SqueezeNet};
/// use wa_tensor::SeededRng;
///
/// let mut rng = SeededRng::new(0);
/// let spec = ModelSpec::builder().classes(10).width(0.25).build()?;
/// let mut net = SqueezeNet::from_spec(&spec, &mut rng)?;
/// assert_eq!(net.conv_count(), 8); // one expand-3×3 per fire module
/// # Ok::<(), wa_nn::WaError>(())
/// ```
pub struct SqueezeNet {
    stem: Conv2d,
    stem_bn: BatchNorm2d,
    fires: Vec<Fire>,
    classifier: Conv2d,
    /// Max-pool after these fire indices (0-based, applied post-module).
    pools_after: Vec<usize>,
}

impl SqueezeNet {
    /// Builds the network from a validated [`ModelSpec`] (width 1.0 =
    /// paper scale).
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] / [`WaError::UnsupportedAlgo`] for an
    /// invalid spec or out-of-range override.
    pub fn from_spec(spec: &ModelSpec, rng: &mut SeededRng) -> Result<SqueezeNet, WaError> {
        spec.validate()?;
        let quant = spec.quant;
        let w = |c: usize| scale_width(c, spec.width);
        let stem_ch = w(64);
        let stem = stem_conv3x3("stem", 3, stem_ch, quant, rng)?;
        let stem_bn = bn("stem_bn", stem_ch)?;
        // (squeeze, expand) per fire module, SqueezeNet v1.1 ratios
        let cfg = [
            (16, 64),
            (16, 64),
            (32, 128),
            (32, 128),
            (48, 192),
            (48, 192),
            (64, 256),
            (64, 256),
        ];
        let mut fires = Vec::with_capacity(8);
        let mut in_ch = stem_ch;
        for (i, &(s, e)) in cfg.iter().enumerate() {
            let fire = Fire::new(&format!("fire{}", i + 2), in_ch, w(s), w(e), quant, rng)?;
            in_ch = fire.out_channels();
            fires.push(fire);
        }
        let classifier = conv1x1("classifier", in_ch, spec.classes, true, quant, rng)?;
        let mut net = SqueezeNet {
            stem,
            stem_bn,
            fires,
            classifier,
            pools_after: vec![1, 3],
        };
        net.try_set_algo(spec.algo)?;
        spec.check_override_bounds(net.conv_count())?;
        for &(idx, algo) in &spec.overrides {
            net.conv_layers_mut()[idx].try_convert(algo)?;
        }
        Ok(net)
    }

    /// Converts every expand-3×3 to the given algorithm.
    ///
    /// # Errors
    ///
    /// [`WaError::UnsupportedAlgo`] if `algo` is unusable.
    pub fn try_set_algo(&mut self, algo: ConvAlgo) -> Result<(), WaError> {
        convert_convs(self, algo, 0)
    }

    /// Panicking wrapper around [`SqueezeNet::try_set_algo`].
    ///
    /// # Panics
    ///
    /// Panics if `algo` is unusable.
    pub fn set_algo(&mut self, algo: ConvAlgo) {
        self.try_set_algo(algo)
            .unwrap_or_else(|e| panic!("set_algo({algo}): {e}"));
    }

    fn check_input(&self, shape: &[usize]) -> Result<(), WaError> {
        if shape.len() != 4 || shape[1] != 3 {
            return Err(WaError::shape("SqueezeNet input", &[0, 3, 0, 0], shape));
        }
        // replay the pooling plan of `forward`: the stem pool always
        // applies, the fire-stage pools only while the height is >= 4 —
        // every applied pool needs even dims
        let (mut h, mut w) = (shape[2], shape[3]);
        let mut pool_ok = h > 0 && h.is_multiple_of(2) && w.is_multiple_of(2);
        if pool_ok {
            h /= 2;
            w /= 2;
            for _ in 0..self.pools_after.len() {
                if h >= 4 {
                    if !h.is_multiple_of(2) || !w.is_multiple_of(2) {
                        pool_ok = false;
                        break;
                    }
                    h /= 2;
                    w /= 2;
                }
            }
        }
        if !pool_ok {
            return Err(WaError::shape(
                "SqueezeNet input (spatial dims must stay even through every \
                 applied max-pool stage)",
                &[0, 3, 0, 0],
                shape,
            ));
        }
        Ok(())
    }
}

impl Layer for SqueezeNet {
    fn try_forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Result<Var, WaError> {
        self.check_input(tape.value(x).shape())?;
        Ok(self.forward(tape, x, train))
    }

    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var {
        let h = self.stem.forward(tape, x, train);
        self.rest(tape, h, train)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.stem.visit_params(f);
        self.stem_bn.visit_params(f);
        for fire in &mut self.fires {
            fire.visit_params(f);
        }
        self.classifier.visit_params(f);
    }

    fn reset_statistics(&mut self) {
        self.stem.reset_statistics();
        self.stem_bn.reset_statistics();
        for fire in &mut self.fires {
            fire.reset_statistics();
        }
        self.classifier.reset_statistics();
    }

    fn visit_quant_state(&mut self, f: &mut dyn FnMut(&str, QuantStateMut<'_>)) {
        self.stem.visit_quant_state(f);
        self.stem_bn.visit_quant_state(f);
        for fire in &mut self.fires {
            fire.visit_quant_state(f);
        }
        self.classifier.visit_quant_state(f);
    }
}

impl SqueezeNet {
    /// Shared tail of `forward`/`try_forward` after the stem.
    fn rest(&mut self, tape: &mut Tape, stem_out: Var, train: bool) -> Var {
        let mut h = self.stem_bn.forward(tape, stem_out, train);
        h = tape.relu(h);
        h = tape.max_pool2d(h);
        for (i, fire) in self.fires.iter_mut().enumerate() {
            h = fire.forward(tape, h, train);
            if self.pools_after.contains(&i) && tape.value(h).dim(2) >= 4 {
                h = tape.max_pool2d(h);
            }
        }
        let logits_map = self.classifier.forward(tape, h, train);
        tape.global_avg_pool(logits_map)
    }
}

impl Infer for SqueezeNet {
    fn infer(&self, tape: &mut Tape, x: Var) -> Result<Var, WaError> {
        self.check_input(tape.value(x).shape())?;
        let mut h = self.stem.infer(tape, x)?;
        h = self.stem_bn.infer(tape, h)?;
        h = tape.relu(h);
        h = tape.max_pool2d(h);
        for (i, fire) in self.fires.iter().enumerate() {
            h = fire.infer(tape, h)?;
            if self.pools_after.contains(&i) && tape.value(h).dim(2) >= 4 {
                h = tape.max_pool2d(h);
            }
        }
        let logits_map = self.classifier.infer(tape, h)?;
        Ok(tape.global_avg_pool(logits_map))
    }
}

impl ConvNet for SqueezeNet {
    fn conv_layers_mut(&mut self) -> Vec<&mut ConvLayer> {
        self.fires.iter_mut().map(|f| &mut f.expand3).collect()
    }

    fn model_name(&self) -> &str {
        "SqueezeNet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::current_algos;

    fn spec(classes: usize, width: f64) -> ModelSpec {
        ModelSpec::builder()
            .classes(classes)
            .width(width)
            .build()
            .unwrap()
    }

    #[test]
    fn forward_shape() {
        let mut rng = SeededRng::new(0);
        let mut net = SqueezeNet::from_spec(&spec(10, 0.25), &mut rng).unwrap();
        let mut tape = Tape::new();
        let x = tape.leaf(rng.uniform_tensor(&[2, 3, 16, 16], -1.0, 1.0));
        let y = net.try_forward(&mut tape, x, true).unwrap();
        assert_eq!(tape.value(y).shape(), &[2, 10]);
    }

    #[test]
    fn eight_swappable_convs_and_swap() {
        let mut rng = SeededRng::new(1);
        let mut net = SqueezeNet::from_spec(&spec(10, 0.25), &mut rng).unwrap();
        assert_eq!(net.conv_count(), 8);
        net.try_set_algo(ConvAlgo::WinogradFlex { m: 4 }).unwrap();
        assert!(current_algos(&mut net)
            .iter()
            .all(|a| *a == ConvAlgo::WinogradFlex { m: 4 }));
    }

    #[test]
    fn fp32_swap_preserves_output() {
        let mut rng = SeededRng::new(2);
        let mut net = SqueezeNet::from_spec(&spec(5, 0.25), &mut rng).unwrap();
        let x = rng.uniform_tensor(&[1, 3, 16, 16], -1.0, 1.0);
        let before = {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let y = net.forward(&mut tape, xv, false);
            tape.value(y).clone()
        };
        net.try_set_algo(ConvAlgo::Winograd { m: 2 }).unwrap();
        let after = {
            let mut tape = Tape::new();
            let xv = tape.leaf(x);
            let y = net.forward(&mut tape, xv, false);
            tape.value(y).clone()
        };
        for (a, b) in before.data().iter().zip(after.data()) {
            assert!((a - b).abs() < 1e-2, "{} vs {}", a, b);
        }
    }
}
