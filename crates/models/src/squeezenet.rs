//! SqueezeNet (Iandola et al. 2016), CIFAR-sized, with Winograd-swappable
//! expand-3×3 convolutions — the Table 4 architecture. It has 8 swappable
//! 3×3 layers (one per fire module), which the paper credits for its
//! milder INT8/F4 degradation versus ResNet-18's 16.

use wa_core::{ConvAlgo, ConvLayer};
use wa_nn::{BatchNorm2d, Conv2d, Layer, Param, QuantConfig, Tape, Var};
use wa_tensor::SeededRng;

use crate::common::{scale_width, ConvNet};

/// Fire module: 1×1 squeeze, then parallel 1×1 and 3×3 expands,
/// channel-concatenated. Only the 3×3 expand is Winograd-swappable.
struct Fire {
    squeeze: Conv2d,
    expand1: Conv2d,
    expand3: ConvLayer,
}

impl Fire {
    fn new(
        name: &str,
        in_ch: usize,
        squeeze_ch: usize,
        expand_ch: usize,
        quant: QuantConfig,
        rng: &mut SeededRng,
    ) -> Fire {
        Fire {
            squeeze: Conv2d::new(&format!("{name}.squeeze"), in_ch, squeeze_ch, 1, 1, 0, true, quant, rng),
            expand1: Conv2d::new(&format!("{name}.expand1"), squeeze_ch, expand_ch, 1, 1, 0, true, quant, rng),
            expand3: ConvLayer::new(
                &format!("{name}.expand3"),
                squeeze_ch,
                expand_ch,
                3,
                1,
                1,
                ConvAlgo::Im2row,
                quant,
                rng,
            ),
        }
    }

    fn out_channels(&self) -> usize {
        self.expand1.out_channels() * 2
    }

    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var {
        let s = self.squeeze.forward(tape, x, train);
        let s = tape.relu(s);
        let e1 = self.expand1.forward(tape, s, train);
        let e3 = self.expand3.forward(tape, s, train);
        let cat = tape.concat_chan(&[e1, e3]);
        tape.relu(cat)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.squeeze.visit_params(f);
        self.expand1.visit_params(f);
        self.expand3.visit_params(f);
    }

    fn reset_statistics(&mut self) {
        self.squeeze.reset_statistics();
        self.expand1.reset_statistics();
        self.expand3.reset_statistics();
    }
}

/// CIFAR-sized SqueezeNet: 3×3 stem, eight fire modules with two
/// max-pool stages, 1×1 classifier conv and global average pooling.
///
/// # Example
///
/// ```
/// use wa_models::{ConvNet, SqueezeNet};
/// use wa_nn::{Layer, QuantConfig, Tape};
/// use wa_tensor::SeededRng;
///
/// let mut rng = SeededRng::new(0);
/// let mut net = SqueezeNet::new(10, 0.25, QuantConfig::FP32, &mut rng);
/// assert_eq!(net.conv_count(), 8); // one expand-3×3 per fire module
/// ```
pub struct SqueezeNet {
    stem: Conv2d,
    stem_bn: BatchNorm2d,
    fires: Vec<Fire>,
    classifier: Conv2d,
    /// Max-pool after these fire indices (0-based, applied post-module).
    pools_after: Vec<usize>,
}

impl SqueezeNet {
    /// Builds the network with a width multiplier (1.0 = paper scale).
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0` or `width <= 0.0`.
    pub fn new(classes: usize, width: f64, quant: QuantConfig, rng: &mut SeededRng) -> SqueezeNet {
        assert!(classes > 0, "need at least one class");
        assert!(width > 0.0, "width multiplier must be positive");
        let w = |c: usize| scale_width(c, width);
        let stem_ch = w(64);
        let stem = Conv2d::new("stem", 3, stem_ch, 3, 1, 1, false, quant, rng);
        let stem_bn = BatchNorm2d::new("stem_bn", stem_ch);
        // (squeeze, expand) per fire module, SqueezeNet v1.1 ratios
        let cfg = [
            (16, 64),
            (16, 64),
            (32, 128),
            (32, 128),
            (48, 192),
            (48, 192),
            (64, 256),
            (64, 256),
        ];
        let mut fires = Vec::with_capacity(8);
        let mut in_ch = stem_ch;
        for (i, &(s, e)) in cfg.iter().enumerate() {
            let fire = Fire::new(&format!("fire{}", i + 2), in_ch, w(s), w(e), quant, rng);
            in_ch = fire.out_channels();
            fires.push(fire);
        }
        let classifier =
            Conv2d::new("classifier", in_ch, classes, 1, 1, 0, true, quant, rng);
        SqueezeNet { stem, stem_bn, fires, classifier, pools_after: vec![1, 3] }
    }

    /// Converts every expand-3×3 to the given algorithm.
    pub fn set_algo(&mut self, algo: ConvAlgo) {
        for fire in &mut self.fires {
            fire.expand3.convert(algo);
        }
    }
}

impl Layer for SqueezeNet {
    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var {
        let mut h = self.stem.forward(tape, x, train);
        h = self.stem_bn.forward(tape, h, train);
        h = tape.relu(h);
        h = tape.max_pool2d(h);
        for (i, fire) in self.fires.iter_mut().enumerate() {
            h = fire.forward(tape, h, train);
            if self.pools_after.contains(&i) && tape.value(h).dim(2) >= 4 {
                h = tape.max_pool2d(h);
            }
        }
        let logits_map = self.classifier.forward(tape, h, train);
        tape.global_avg_pool(logits_map)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.stem.visit_params(f);
        self.stem_bn.visit_params(f);
        for fire in &mut self.fires {
            fire.visit_params(f);
        }
        self.classifier.visit_params(f);
    }

    fn reset_statistics(&mut self) {
        self.stem.reset_statistics();
        self.stem_bn.reset_statistics();
        for fire in &mut self.fires {
            fire.reset_statistics();
        }
        self.classifier.reset_statistics();
    }
}

impl ConvNet for SqueezeNet {
    fn conv_layers_mut(&mut self) -> Vec<&mut ConvLayer> {
        self.fires.iter_mut().map(|f| &mut f.expand3).collect()
    }

    fn model_name(&self) -> &str {
        "SqueezeNet"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::current_algos;

    #[test]
    fn forward_shape() {
        let mut rng = SeededRng::new(0);
        let mut net = SqueezeNet::new(10, 0.25, QuantConfig::FP32, &mut rng);
        let mut tape = Tape::new();
        let x = tape.leaf(rng.uniform_tensor(&[2, 3, 16, 16], -1.0, 1.0));
        let y = net.forward(&mut tape, x, true);
        assert_eq!(tape.value(y).shape(), &[2, 10]);
    }

    #[test]
    fn eight_swappable_convs_and_swap() {
        let mut rng = SeededRng::new(1);
        let mut net = SqueezeNet::new(10, 0.25, QuantConfig::FP32, &mut rng);
        assert_eq!(net.conv_count(), 8);
        net.set_algo(ConvAlgo::WinogradFlex { m: 4 });
        assert!(current_algos(&mut net)
            .iter()
            .all(|a| *a == ConvAlgo::WinogradFlex { m: 4 }));
    }

    #[test]
    fn fp32_swap_preserves_output() {
        let mut rng = SeededRng::new(2);
        let mut net = SqueezeNet::new(5, 0.25, QuantConfig::FP32, &mut rng);
        let x = rng.uniform_tensor(&[1, 3, 16, 16], -1.0, 1.0);
        let before = {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let y = net.forward(&mut tape, xv, false);
            tape.value(y).clone()
        };
        net.set_algo(ConvAlgo::Winograd { m: 2 });
        let after = {
            let mut tape = Tape::new();
            let xv = tape.leaf(x);
            let y = net.forward(&mut tape, xv, false);
            tape.value(y).clone()
        };
        for (a, b) in before.data().iter().zip(after.data()) {
            assert!((a - b).abs() < 1e-2, "{} vs {}", a, b);
        }
    }
}
