//! Architecture-dispatching model container for serving.
//!
//! A serving node receives a [`FullCheckpoint`] — architecture name +
//! [`ModelSpec`] document + parameters in one JSON file — and must turn
//! it into *something it can run* without knowing the concrete model type
//! at compile time. [`ZooModel`] is that something: any of the four paper
//! architectures behind a uniform [`Layer`] + [`Infer`] surface, tagged
//! with the spec it was built from (so per-sample input shapes can be
//! validated before a request is admitted into a shared batch).
//!
//! ```
//! use wa_models::{ModelKind, ModelSpec, ZooModel};
//! use wa_tensor::SeededRng;
//!
//! let spec = ModelSpec::builder().classes(10).input_size(12).build()?;
//! let mut rng = SeededRng::new(0);
//! let mut model = ZooModel::from_spec(ModelKind::LeNet, &spec, &mut rng)?;
//! assert_eq!(model.sample_shape(), [1, 12, 12]);
//!
//! // one-document round trip: export → re-import elsewhere
//! let doc = model.to_full_checkpoint()?;
//! let rebuilt = ZooModel::from_full_checkpoint(&doc)?;
//! assert_eq!(rebuilt.kind(), ModelKind::LeNet);
//! # Ok::<(), wa_nn::WaError>(())
//! ```

use wa_nn::{
    export_params, export_quant_state, import_params, import_quant_state, CheckpointError,
    FullCheckpoint, Infer, Layer, Param, QuantStateMut, Tape, Var, WaError,
};
use wa_tensor::SeededRng;

use crate::lenet::LeNet;
use crate::resnet::ResNet18;
use crate::resnext::ResNeXt20;
use crate::spec::ModelSpec;
use crate::squeezenet::SqueezeNet;

/// The four architectures of the paper's model zoo, by serving name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// LeNet with 5×5 filters (single-channel inputs).
    LeNet,
    /// The paper's CIFAR ResNet-18 variant.
    ResNet18,
    /// SqueezeNet (Table 4).
    SqueezeNet,
    /// ResNeXt-20, cardinality 8 (Table 5).
    ResNeXt20,
}

impl ModelKind {
    /// Every architecture, in zoo order.
    pub const ALL: [ModelKind; 4] = [
        ModelKind::LeNet,
        ModelKind::ResNet18,
        ModelKind::SqueezeNet,
        ModelKind::ResNeXt20,
    ];

    /// The wire/checkpoint name (`"lenet"`, `"resnet18"`, …).
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::LeNet => "lenet",
            ModelKind::ResNet18 => "resnet18",
            ModelKind::SqueezeNet => "squeezenet",
            ModelKind::ResNeXt20 => "resnext20",
        }
    }

    /// Input channel count of the architecture's expected NCHW input.
    pub fn in_channels(self) -> usize {
        match self {
            ModelKind::LeNet => 1,
            _ => 3,
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for ModelKind {
    type Err = WaError;

    fn from_str(s: &str) -> Result<ModelKind, WaError> {
        let t = s.trim().to_ascii_lowercase();
        ModelKind::ALL
            .into_iter()
            .find(|k| k.name() == t)
            .ok_or_else(|| {
                WaError::invalid(
                    "FullCheckpoint",
                    "arch",
                    format!(
                        "unknown architecture `{s}` (expected one of {:?})",
                        ModelKind::ALL.map(|k| k.name())
                    ),
                )
            })
    }
}

/// Maps a [`CheckpointError`] raised while applying a full checkpoint's
/// params into the [`WaError`] vocabulary serving responses use.
fn import_error(e: CheckpointError) -> WaError {
    match e {
        CheckpointError::ShapeMismatch {
            name,
            expected,
            found,
        } => WaError::shape(format!("checkpoint parameter `{name}`"), &expected, &found),
        CheckpointError::QuantState { name, reason } => WaError::invalid(
            "FullCheckpoint",
            "quant",
            format!("`quant.{name}`: {reason}"),
        ),
        other => WaError::invalid("FullCheckpoint", "params", other.to_string()),
    }
}

/// Prefixes a spec-document parse error's message with the checkpoint
/// key path (`spec.<field>`), extending the `params.<name>` convention
/// to the spec half of the document.
fn spec_error(e: WaError) -> WaError {
    match e {
        WaError::InvalidSpec {
            spec,
            field,
            reason,
        } => WaError::InvalidSpec {
            spec,
            field,
            reason: format!("at `spec.{field}`: {reason}"),
        },
        other => other,
    }
}

/// The concrete network, dispatched at runtime (boxed: the variants are
/// whole models of very different sizes).
#[allow(clippy::enum_variant_names)] // the variants are architecture names
enum Net {
    LeNet(Box<LeNet>),
    ResNet18(Box<ResNet18>),
    SqueezeNet(Box<SqueezeNet>),
    ResNeXt20(Box<ResNeXt20>),
}

/// One model of the zoo behind a uniform [`Layer`] + [`Infer`] surface,
/// tagged with the [`ModelSpec`] it was built from. See the
/// module-level docs above for the serving round trip.
pub struct ZooModel {
    kind: ModelKind,
    spec: ModelSpec,
    net: Net,
}

impl std::fmt::Debug for ZooModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZooModel")
            .field("kind", &self.kind)
            .field("spec", &self.spec)
            .finish_non_exhaustive()
    }
}

impl ZooModel {
    /// Builds the architecture `kind` from a validated spec.
    ///
    /// # Errors
    ///
    /// Whatever the concrete model's `from_spec` raises.
    pub fn from_spec(
        kind: ModelKind,
        spec: &ModelSpec,
        rng: &mut SeededRng,
    ) -> Result<ZooModel, WaError> {
        let net = match kind {
            ModelKind::LeNet => Net::LeNet(Box::new(LeNet::from_spec(spec, rng)?)),
            ModelKind::ResNet18 => Net::ResNet18(Box::new(ResNet18::from_spec(spec, rng)?)),
            ModelKind::SqueezeNet => Net::SqueezeNet(Box::new(SqueezeNet::from_spec(spec, rng)?)),
            ModelKind::ResNeXt20 => Net::ResNeXt20(Box::new(ResNeXt20::from_spec(spec, rng)?)),
        };
        Ok(ZooModel {
            kind,
            spec: spec.clone(),
            net,
        })
    }

    /// Which architecture this is.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The spec the model was built from.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The `[C, H, W]` shape of one input sample — what a serving
    /// scheduler validates each request against before admitting it into
    /// a shared `[N, C, H, W]` batch.
    pub fn sample_shape(&self) -> [usize; 3] {
        let s = self.spec.input_size;
        [self.kind.in_channels(), s, s]
    }

    /// Exports architecture + spec + calibration state + parameters as
    /// one document. The `quant` section carries every calibration site
    /// ([`Layer::visit_quant_state`]): quantizer ranges — including the
    /// per-tap scales of tap-wise Winograd layers — and batch-norm
    /// running moments, so a serving node reproduces this process's
    /// logits bit-for-bit.
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] if parameter or site names collide (they
    /// never do for zoo-built models).
    pub fn to_full_checkpoint(&mut self) -> Result<FullCheckpoint, WaError> {
        let arch = self.kind.name().to_string();
        let spec = self.spec.to_json();
        let quant = export_quant_state(self.as_layer())
            .map_err(|e| WaError::invalid("FullCheckpoint", "quant", e.to_string()))?;
        let params = export_params(self.as_layer())
            .map_err(|e| WaError::invalid("FullCheckpoint", "params", e.to_string()))?;
        Ok(FullCheckpoint {
            arch,
            spec,
            quant,
            params,
        })
    }

    /// Reconstructs a runnable model from a one-document checkpoint:
    /// parse `arch` → validate `spec` → build (deterministic placeholder
    /// init) → import `params` atomically → restore the `quant`
    /// calibration (when the document carries one).
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] for an unknown architecture, a spec
    /// violating a paper constraint (the offending checkpoint path, e.g.
    /// `` `spec.quant.transform` ``, rides in the message), or a `quant`
    /// entry that does not fit the rebuilt model;
    /// [`WaError::ShapeMismatch`] naming the parameter when a stored
    /// tensor disagrees with the built model.
    pub fn from_full_checkpoint(doc: &FullCheckpoint) -> Result<ZooModel, WaError> {
        let kind: ModelKind = doc.arch.parse()?;
        let spec = ModelSpec::from_json(&doc.spec).map_err(spec_error)?;
        // the init is overwritten wholesale by the import, so any seed works
        let mut rng = SeededRng::new(0);
        let mut out = ZooModel::from_spec(kind, &spec, &mut rng)?;
        import_params(out.as_layer(), &doc.params).map_err(import_error)?;
        import_quant_state(out.as_layer(), &doc.quant).map_err(import_error)?;
        Ok(out)
    }

    fn as_layer(&mut self) -> &mut dyn Layer {
        match &mut self.net {
            Net::LeNet(m) => m.as_mut(),
            Net::ResNet18(m) => m.as_mut(),
            Net::SqueezeNet(m) => m.as_mut(),
            Net::ResNeXt20(m) => m.as_mut(),
        }
    }

    fn as_infer(&self) -> &(dyn Infer + Sync) {
        match &self.net {
            Net::LeNet(m) => m.as_ref(),
            Net::ResNet18(m) => m.as_ref(),
            Net::SqueezeNet(m) => m.as_ref(),
            Net::ResNeXt20(m) => m.as_ref(),
        }
    }
}

impl Layer for ZooModel {
    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var {
        self.as_layer().forward(tape, x, train)
    }

    fn try_forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Result<Var, WaError> {
        self.as_layer().try_forward(tape, x, train)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.as_layer().visit_params(f)
    }

    fn reset_statistics(&mut self) {
        self.as_layer().reset_statistics()
    }

    fn visit_quant_state(&mut self, f: &mut dyn FnMut(&str, QuantStateMut<'_>)) {
        self.as_layer().visit_quant_state(f)
    }
}

impl Infer for ZooModel {
    fn infer(&self, tape: &mut Tape, x: Var) -> Result<Var, WaError> {
        self.as_infer().infer(tape, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_core::ConvAlgo;
    use wa_nn::ExecutorConfig;
    use wa_tensor::Tensor;

    fn lenet_spec() -> ModelSpec {
        ModelSpec::builder()
            .classes(10)
            .input_size(12)
            .algo(ConvAlgo::Winograd { m: 2 })
            .build()
            .unwrap()
    }

    #[test]
    fn kind_names_roundtrip() {
        for kind in ModelKind::ALL {
            assert_eq!(kind.name().parse::<ModelKind>().unwrap(), kind);
        }
        assert!("alexnet".parse::<ModelKind>().is_err());
    }

    #[test]
    fn full_checkpoint_roundtrip_reproduces_batched_logits() {
        let mut rng = SeededRng::new(20);
        let mut a = ZooModel::from_spec(ModelKind::LeNet, &lenet_spec(), &mut rng).unwrap();
        let doc = a.to_full_checkpoint().unwrap();
        let text = doc.to_json().to_string_pretty();
        let parsed = FullCheckpoint::from_json_str(&text).unwrap();
        let b = ZooModel::from_full_checkpoint(&parsed).unwrap();
        assert_eq!(b.kind(), ModelKind::LeNet);
        assert_eq!(b.sample_shape(), [1, 12, 12]);

        let batch = rng.uniform_tensor(&[4, 1, 12, 12], -1.0, 1.0);
        let cfg = ExecutorConfig {
            threads: 2,
            chunk: 2,
        };
        let want = a.try_forward_batch(&batch, cfg).unwrap();
        let got = b.try_forward_batch(&batch, cfg).unwrap();
        assert_eq!(want.data(), got.data());
    }

    #[test]
    fn wrong_shaped_params_fail_with_parameter_name() {
        let mut rng = SeededRng::new(21);
        let mut a = ZooModel::from_spec(ModelKind::LeNet, &lenet_spec(), &mut rng).unwrap();
        let mut doc = a.to_full_checkpoint().unwrap();
        let name = "conv1.weight".to_string();
        assert!(doc.params.params.contains_key(&name), "fixture went stale");
        doc.params.params.insert(name.clone(), Tensor::zeros(&[1]));
        let err = ZooModel::from_full_checkpoint(&doc).unwrap_err();
        match err {
            WaError::ShapeMismatch { context, .. } => assert!(context.contains(&name)),
            other => panic!("expected ShapeMismatch, got {other}"),
        }
    }

    #[test]
    fn unknown_arch_is_rejected() {
        let doc = FullCheckpoint {
            arch: "vgg".to_string(),
            spec: lenet_spec().to_json(),
            quant: Default::default(),
            params: Default::default(),
        };
        assert!(matches!(
            ZooModel::from_full_checkpoint(&doc),
            Err(WaError::InvalidSpec { field: "arch", .. })
        ));
    }
}
