//! # wa-models
//!
//! The model zoo of *Searching for Winograd-aware Quantized Networks*
//! (MLSys 2020), with every architecture modification the paper applies:
//!
//! * [`ResNet18`] — CIFAR variant: 32-channel stem, max-pool replacing
//!   stride-2, width multiplier, 16 Winograd-swappable 3×3 convs with the
//!   last two residual blocks pinned to F2 (§5.1).
//! * [`LeNet`] — 5×5 filters for the `F(m, 5×5)` study (Figure 5).
//! * [`SqueezeNet`] — 8 swappable expand-3×3 convs (Table 4).
//! * [`ResNeXt20`] — 6 grouped-3×3 bottleneck stages, cardinality 8
//!   (Table 5).
//!
//! Every model is built from a [`ModelSpec`] (classes, width multiplier,
//! quantization, uniform algorithm, per-layer overrides) through
//! `ModelSpec::builder()`, which validates the configuration and returns
//! `Result<_, WaError>` instead of panicking.
//!
//! The [`ConvNet`] trait plus [`convert_convs`]/[`apply_algos`] implement
//! model-level surgery; [`swap_and_evaluate`] and [`adapt`] reproduce the
//! Table 1 and Figure 6 workflows.
//!
//! Every model also implements the read-only [`Infer`] trait and exposes
//! `try_forward_batch`, which shards an `[N, C, H, W]` batch across
//! worker threads through the [`BatchExecutor`] with outputs identical
//! to the sequential per-sample loop.

mod adaptation;
mod common;
mod lenet;
mod resnet;
mod resnext;
mod spec;
mod squeezenet;
mod zoo;

pub use adaptation::{adapt, swap_and_evaluate};
pub use common::{
    apply_algos, apply_quants, convert_convs, current_algos, scale_width, set_conv_quant, ConvNet,
};
pub use lenet::LeNet;
pub use resnet::ResNet18;
pub use resnext::ResNeXt20;
pub use spec::{ModelSpec, ModelSpecBuilder};
pub use squeezenet::SqueezeNet;
pub use wa_nn::{BatchExecutor, ExecutorConfig, ExecutorStats, Infer, WaError};
pub use zoo::{ModelKind, ZooModel};
