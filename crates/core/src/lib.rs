//! # wa-core
//!
//! The primary contribution of *Searching for Winograd-aware Quantized
//! Networks* (MLSys 2020), as a library:
//!
//! * [`WinogradAwareConv2d`] — a convolution layer evaluated explicitly as
//!   `Aᵀ[(G·g·Gᵀ) ⊙ (Bᵀ·d·B)]A` with every intermediate fake-quantized,
//!   so training absorbs the numerical error of the Winograd algorithm
//!   (paper §3.2, Figure 2). Transforms are Cook-Toom-initialized and,
//!   in `-flex` mode, learnable.
//! * [`ConvLayer`] / [`ConvAlgo`] — algorithm-switchable convolutions with
//!   in-place **surgery** (swap a trained im2row layer to Winograd, the
//!   Table 1 experiment) and the basis for wiNAS search.
//! * [`fit`] / [`evaluate`] / [`warm_up`] — the training pipeline used by
//!   every experiment, including the moving-average warm-up the paper
//!   applies before post-training swaps.
//!
//! # Example: quantized Winograd-aware training recovers what a
//! post-training swap destroys
//!
//! ```
//! use wa_core::{ConvAlgo, ConvLayer};
//! use wa_nn::QuantConfig;
//! use wa_quant::BitWidth;
//! use wa_tensor::SeededRng;
//!
//! let mut rng = SeededRng::new(0);
//! let q = QuantConfig::uniform(BitWidth::INT8);
//! // A layer that *trains through* the quantized F4 pipeline:
//! let layer = ConvLayer::new("c", 16, 16, 3, 1, 1, ConvAlgo::WinogradFlex { m: 4 }, q, &mut rng);
//! assert_eq!(layer.algo().tile_m(), Some(4));
//! ```

mod conv_layer;
mod trainer;
mod winograd_layer;

pub use conv_layer::{ConvAlgo, ConvLayer};
pub use trainer::{
    evaluate, fit, train_step, warm_up, EpochStats, History, LabeledBatch, OptimKind, TrainConfig,
};
pub use winograd_layer::WinogradAwareConv2d;
