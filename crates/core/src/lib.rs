//! # wa-core
//!
//! The primary contribution of *Searching for Winograd-aware Quantized
//! Networks* (MLSys 2020), as a library:
//!
//! * [`ConvSpec`] — the typed, validated description of one convolution:
//!   geometry, [`ConvAlgo`] and quantization. Built through
//!   `ConvSpec::builder()`, which enforces every paper constraint
//!   (nonzero dims; Winograd ⇒ stride 1, odd kernel ≥ 3, tile size
//!   `m ∈ {2, 4, 6}`) and returns `Result<_, WaError>` instead of
//!   panicking.
//! * [`WinogradAwareConv2d`] — a convolution layer evaluated explicitly as
//!   `Aᵀ[(G·g·Gᵀ) ⊙ (Bᵀ·d·B)]A` with every intermediate fake-quantized,
//!   so training absorbs the numerical error of the Winograd algorithm
//!   (paper §3.2, Figure 2). Transforms are Cook-Toom-initialized and,
//!   in `-flex` mode, learnable.
//! * [`ConvLayer`] / [`ConvAlgo`] — algorithm-switchable convolutions with
//!   in-place **surgery** (swap a trained im2row layer to Winograd, the
//!   Table 1 experiment; fallible via [`ConvLayer::try_convert`]) and the
//!   basis for wiNAS search.
//! * [`fit`] / [`evaluate`] / [`warm_up`] — the training pipeline used by
//!   every experiment, including the moving-average warm-up the paper
//!   applies before post-training swaps.
//!
//! # The construction idiom
//!
//! Every layer is built from a spec; invalid configurations are rejected
//! as values, which is what lets a serving front-end validate untrusted
//! layer configs without a `catch_unwind`:
//!
//! ```
//! use wa_core::{ConvAlgo, ConvLayer, ConvSpec, WaError};
//! use wa_nn::QuantConfig;
//! use wa_quant::BitWidth;
//! use wa_tensor::SeededRng;
//!
//! let mut rng = SeededRng::new(0);
//! // An INT8 Winograd-aware F4 layer with learnable transforms:
//! let spec = ConvSpec::builder()
//!     .name("c")
//!     .in_channels(16)
//!     .out_channels(16)
//!     .kernel(3)
//!     .algo(ConvAlgo::WinogradFlex { m: 4 })
//!     .quant(QuantConfig::uniform(BitWidth::INT8))
//!     .build()?;
//! let layer = ConvLayer::from_spec(&spec, &mut rng)?;
//! assert_eq!(layer.algo().tile_m(), Some(4));
//!
//! // Paper constraints surface as errors, not aborts:
//! let bad = ConvSpec::builder()
//!     .in_channels(16)
//!     .out_channels(16)
//!     .stride(2)
//!     .algo(ConvAlgo::Winograd { m: 4 })
//!     .build();
//! assert!(matches!(bad, Err(WaError::UnsupportedAlgo { .. })));
//! # Ok::<(), WaError>(())
//! ```

mod conv_layer;
mod int8_pipeline;
mod spec;
mod trainer;
mod winograd_layer;

pub use conv_layer::{ConvAlgo, ConvLayer};
pub use spec::{validate_algo_geometry, ConvSpec, ConvSpecBuilder, SUPPORTED_TILE_SIZES};
pub use trainer::{
    evaluate, fit, train_step, warm_up, EpochStats, History, LabeledBatch, OptimKind, TrainConfig,
};
pub use wa_nn::WaError;
pub use winograd_layer::WinogradAwareConv2d;
