//! The Winograd-aware convolution layer (paper §3.2, Figure 2).

use std::sync::{Arc, Mutex};

use wa_nn::{
    infer_quant, infer_quant_taps, observe_quant, observe_quant_taps, Infer, Layer, Param,
    QuantConfig, QuantStateMut, Tape, Var, WaError,
};
use wa_quant::{quantize_i8_taps, BitWidth, Execution, Observer, Requantizer, TapPolicy, TapQuant};
use wa_tensor::{gemm_i8_prepacked, PackedAI8, PackedBI8, SeededRng, Tensor};
use wa_winograd::{TileGeometry, WinogradTransform};

use crate::int8_pipeline::{
    fused_input_pack, fused_requant_output, supports_tile, BackQuant, FrontQuant,
};
use crate::spec::ConvSpec;

/// Identifies one quantization point `Qx` of Figure 2.
#[derive(Clone, Copy)]
enum QuantSite {
    /// Input activations `d`.
    Input,
    /// Spatial weights `g`.
    Weight,
    /// One-sided filter transform `G·g`.
    Gg,
    /// Winograd-domain filter `G·g·Gᵀ`.
    Ggt,
    /// One-sided input transform `Bᵀ·d`.
    Bd,
    /// Winograd-domain input `Bᵀ·d·B`.
    Bdb,
    /// Elementwise product (per-coordinate GEMM output).
    Hadamard,
    /// One-sided output transform `Aᵀ·y`.
    Ay,
    /// Layer output `Aᵀ·y·A`.
    Aya,
}

/// Range observers for every quantization point `Qx` of Figure 2, plus
/// the tap-wise calibration of the two **Winograd-domain** sites. The
/// tensors at `Q(Bᵀ·d·B)` and `Q(G·g·Gᵀ)` are rows of `n²` taps, so under
/// [`TapPolicy::PerTap`] those two sites quantize through [`TapQuant`]
/// (one scale per tap position) instead of their scalar observer; every
/// other site is per-tensor under either policy.
#[derive(Debug)]
struct WinogradObservers {
    input: Observer,
    weight: Observer,
    gg: Observer,  // G·g
    ggt: Observer, // G·g·Gᵀ
    bd: Observer,  // Bᵀ·d
    bdb: Observer, // Bᵀ·d·B
    hadamard: Observer,
    ay: Observer,  // Aᵀ·y
    aya: Observer, // Aᵀ·y·A (layer output)
    /// Tap-wise state for `Bᵀ·d·B` (used iff the policy is `PerTap`).
    bdb_taps: TapQuant,
    /// Tap-wise state for `G·g·Gᵀ` (used iff the policy is `PerTap`).
    ggt_taps: TapQuant,
}

impl WinogradObservers {
    /// Fresh observers for an `n×n` input tile.
    fn new(n: usize) -> WinogradObservers {
        WinogradObservers {
            input: Observer::default(),
            weight: Observer::default(),
            gg: Observer::default(),
            ggt: Observer::default(),
            bd: Observer::default(),
            bdb: Observer::default(),
            hadamard: Observer::default(),
            ay: Observer::default(),
            aya: Observer::default(),
            bdb_taps: TapQuant::new(n),
            ggt_taps: TapQuant::new(n),
        }
    }

    fn site(&self, s: QuantSite) -> &Observer {
        match s {
            QuantSite::Input => &self.input,
            QuantSite::Weight => &self.weight,
            QuantSite::Gg => &self.gg,
            QuantSite::Ggt => &self.ggt,
            QuantSite::Bd => &self.bd,
            QuantSite::Bdb => &self.bdb,
            QuantSite::Hadamard => &self.hadamard,
            QuantSite::Ay => &self.ay,
            QuantSite::Aya => &self.aya,
        }
    }

    fn site_mut(&mut self, s: QuantSite) -> &mut Observer {
        match s {
            QuantSite::Input => &mut self.input,
            QuantSite::Weight => &mut self.weight,
            QuantSite::Gg => &mut self.gg,
            QuantSite::Ggt => &mut self.ggt,
            QuantSite::Bd => &mut self.bd,
            QuantSite::Bdb => &mut self.bdb,
            QuantSite::Hadamard => &mut self.hadamard,
            QuantSite::Ay => &mut self.ay,
            QuantSite::Aya => &mut self.aya,
        }
    }
}

/// Prepacked integer Winograd-domain filter for the [`Execution::Int8`]
/// path: the memoized `G·g·Gᵀ` rows re-quantized to `i8` (exact when the
/// weight-side sites are calibrated — the cached values already sit on
/// the quantization grid), permuted into `[n², K, C]` order and packed
/// once into the [`gemm_i8_prepacked`] left-operand layout (widened
/// i16), together with the per-tap scales they were quantized under (a
/// per-layer site broadcasts its one scale). Packing at cache-build time
/// keeps the per-inference GEMM free of operand widening — the filter is
/// the large static side (`n²·K·C` elements, ~9.4M on a deep ResNet
/// layer), so repacking it per call dominated the integer middle.
#[derive(Debug)]
struct Int8Filter {
    /// Taps in `[n², K, C]` order, prepacked for the integer GEMM.
    packed: PackedAI8,
    /// One scale per tap position (`n²` entries).
    scales: Vec<f32>,
}

/// A warm view of tap-wise calibration state: the state itself if it has
/// observed anything, otherwise a one-off clone warmed on the tensor at
/// hand (the tap-wise analogue of `infer_quant`'s cold-observer
/// fallback).
fn warm_taps(tq: &TapQuant, x: &Tensor) -> TapQuant {
    let mut t = tq.clone();
    if t.observations() == 0 {
        t.observe(x);
    }
    t
}

/// A warm per-layer scale: the observer's settled scale, or the one-off
/// fallback a cold observer would derive from the tensor at hand.
fn warm_scale(obs: &Observer, bits: BitWidth, x: &Tensor) -> f32 {
    if obs.observations() > 0 {
        obs.scale(bits)
    } else {
        let mut tmp = obs.clone();
        tmp.observe(x);
        tmp.scale(bits)
    }
}

/// How the pipeline obtains the Winograd-domain filter `G·g·Gᵀ`.
#[derive(Clone, Copy)]
enum FilterVars {
    /// Spatial weights + `G` registered on this tape: quantize and
    /// transform inline (training, and any path that needs gradients or
    /// observer updates for the weight-side sites).
    Spatial {
        /// Spatial filter `[K, C, r, r]`.
        w: Var,
        /// Filter transform `G` `[n, r]`.
        g: Var,
    },
    /// The already-quantized transform rows `[K·C, n²]`, computed once
    /// and injected as a leaf — the weights are constant across a batch,
    /// so inference reuses one derivation for every chunk.
    Transformed(Var),
}

/// Tape variables for the layer's parameters, registered by the caller
/// (mutably via [`Tape::param`] in training, read-only via
/// [`Tape::param_ref`] in inference).
struct PipelineVars {
    filter: FilterVars,
    at: Var,
    bt: Var,
    bias: Option<Var>,
}

/// Static layer configuration copied out of the struct so the pipeline
/// borrows neither the layer nor its observers.
#[derive(Clone, Copy)]
struct PipelineCfg {
    m: usize,
    r: usize,
    pad: usize,
    in_ch: usize,
    out_ch: usize,
    abits: BitWidth,
    wbits: BitWidth,
}

/// The filter half of the pipeline: quantized spatial weights `wq` →
/// `G·g·Gᵀ` rows `[K·C, n²]`, with the `Q(G·g)` / `Q(G·g·Gᵀ)` sites
/// realized through `quant`. Shared by the inline (training) path and the
/// per-model filter cache, so both derive bit-identical values.
fn filter_u_rows(
    tape: &mut Tape,
    wq: Var,
    g: Var,
    cfg: PipelineCfg,
    quant: &mut dyn FnMut(&mut Tape, Var, BitWidth, QuantSite) -> Var,
) -> Var {
    let _span = wa_obs::stage_span!("winograd.filter_transform");
    let (r, n) = (cfg.r, cfg.m + cfg.r - 1);
    let wrows = cfg.out_ch * cfg.in_ch;
    let w1 = tape.reshape(wq, &[wrows * r, r]);
    let w2 = tape.matmul_nt(w1, g); // g·Gᵀ ≡ (G·gᵀ)ᵀ
    let w2q = quant(tape, w2, cfg.wbits, QuantSite::Gg);
    let w3 = tape.reshape(w2q, &[wrows, r * n]);
    let w4 = tape.tile_transpose(w3, r, n);
    let w5 = tape.reshape(w4, &[wrows * n, r]);
    let w6 = tape.matmul_nt(w5, g);
    let w7 = tape.reshape(w6, &[wrows, n * n]);
    let u_rows = tape.tile_transpose(w7, n, n); // GgGᵀ
    quant(tape, u_rows, cfg.wbits, QuantSite::Ggt)
}

/// The Winograd-aware op pipeline `Y = Aᵀ[(G·g·Gᵀ) ⊙ (Bᵀ·d·B)]A`, shared
/// by the training forward (mutable observers) and the [`Infer`] path
/// (read-only observers): the `quant` callback realizes each `Qx` site
/// for its caller. Site calls happen in the same order as the original
/// single-path forward, so observer statistics evolve identically.
fn winograd_pipeline(
    tape: &mut Tape,
    x: Var,
    vars: PipelineVars,
    cfg: PipelineCfg,
    quant: &mut dyn FnMut(&mut Tape, Var, BitWidth, QuantSite) -> Var,
) -> Var {
    let (batch, in_ch, h, w) = {
        let v = tape.value(x);
        assert_eq!(
            v.ndim(),
            4,
            "WinogradAwareConv2d expects NCHW, got {:?}",
            v.shape()
        );
        (v.dim(0), v.dim(1), v.dim(2), v.dim(3))
    };
    assert_eq!(in_ch, cfg.in_ch, "input channels mismatch");
    let (m, r) = (cfg.m, cfg.r);
    let n = m + r - 1;
    let out_ch = cfg.out_ch;
    let geom = TileGeometry::for_conv(h, w, m, r, cfg.pad);
    let total_tiles = batch * geom.tiles();
    let (abits, wbits) = (cfg.abits, cfg.wbits);

    // -- inputs & parameters, quantized
    let xq = quant(tape, x, abits, QuantSite::Input);
    let wq = match vars.filter {
        FilterVars::Spatial { w, .. } => Some(quant(tape, w, wbits, QuantSite::Weight)),
        FilterVars::Transformed(_) => None,
    };
    let (at, bt) = (vars.at, vars.bt);

    // -- input transform BᵀdB (two one-sided products, Qx after each)
    let v_rows = {
        let _span = wa_obs::stage_span!("winograd.input_transform");
        let xp = tape.pad_tiles(xq, geom);
        let tiles = tape.gather_tiles(xp, geom); // [B·T·C, n²]
        let rows = total_tiles * in_ch;
        let t1 = tape.reshape(tiles, &[rows * n, n]);
        let t2 = tape.matmul_nt(t1, bt); // X·B  ≡ (Bᵀ·Xᵀ)ᵀ
        let t2q = quant(tape, t2, abits, QuantSite::Bd);
        let t3 = tape.reshape(t2q, &[rows, n * n]);
        let t4 = tape.tile_transpose(t3, n, n);
        let t5 = tape.reshape(t4, &[rows * n, n]);
        let t6 = tape.matmul_nt(t5, bt);
        let t7 = tape.reshape(t6, &[rows, n * n]);
        let v_rows = tape.tile_transpose(t7, n, n); // BᵀdB
        quant(tape, v_rows, abits, QuantSite::Bdb)
    };

    // -- filter transform GgGᵀ (or the precomputed rows)
    let u_rows = match (vars.filter, wq) {
        (FilterVars::Spatial { g, .. }, Some(wq)) => filter_u_rows(tape, wq, g, cfg, quant),
        (FilterVars::Transformed(u), _) => u,
        (FilterVars::Spatial { .. }, None) => unreachable!("wq is Some iff filter is Spatial"),
    };

    // -- Hadamard product + summation across channels, as one GEMM per
    //    Winograd-domain coordinate (Maji et al. 2019 formulation)
    let mm = {
        let _span = wa_obs::stage_span!("winograd.gemm");
        let v_p = tape.permute3(v_rows, [total_tiles, in_ch, n * n], [2, 1, 0]); // [n², C, T]
        let u_p = tape.permute3(u_rows, [out_ch, in_ch, n * n], [2, 0, 1]); // [n², K, C]
        let mm = tape.bmm(u_p, v_p, n * n, out_ch, in_ch, total_tiles); // [n², K, T]
        quant(tape, mm, abits, QuantSite::Hadamard)
    };

    // -- output transform AᵀyA
    let _span = wa_obs::stage_span!("winograd.output_transform");
    let m3 = tape.permute3(mm, [n * n, out_ch, total_tiles], [2, 1, 0]); // [T, K, n²]
    let orows = total_tiles * out_ch;
    let m_rows = tape.reshape(m3, &[orows, n * n]);
    let o1 = tape.reshape(m_rows, &[orows * n, n]);
    let o2 = tape.matmul_nt(o1, at); // Y·A
    let o2q = quant(tape, o2, abits, QuantSite::Ay);
    let o3 = tape.reshape(o2q, &[orows, n * m]);
    let o4 = tape.tile_transpose(o3, n, m);
    let o5 = tape.reshape(o4, &[orows * m, n]);
    let o6 = tape.matmul_nt(o5, at);
    let o7 = tape.reshape(o6, &[orows, m * m]);
    let y_rows = tape.tile_transpose(o7, m, m);

    let mut y = tape.assemble_output(y_rows, geom, batch, out_ch);
    if let Some(bv) = vars.bias {
        y = tape.add_bias_chan(y, bv);
    }
    quant(tape, y, abits, QuantSite::Aya)
}

/// A convolution layer evaluated *explicitly* as
/// `Y = Aᵀ[(G·g·Gᵀ) ⊙ (Bᵀ·d·B)]A` with every intermediate
/// fake-quantized, so training sees the numerical error of the Winograd
/// algorithm (the central idea of the paper).
///
/// * **Static** configurations (paper `WAF2`, `WAF4`, …) keep `Aᵀ`, `G`,
///   `Bᵀ` fixed at their Cook-Toom values.
/// * **Flex** configurations (`-flex`) mark them trainable, letting
///   back-propagation reshape the transforms to absorb quantization error
///   — worth up to 10% accuracy at INT8/F4 in the paper.
///
/// Stride is fixed at 1: the paper replaces stride-2 convolutions with
/// max-pool + dense conv because "there is no known equivalent for strided
/// Winograd convolutions" (§5.1).
///
/// # Example
///
/// ```
/// use wa_core::{ConvAlgo, ConvSpec, WinogradAwareConv2d};
/// use wa_nn::{Layer, QuantConfig, Tape};
/// use wa_quant::BitWidth;
/// use wa_tensor::SeededRng;
///
/// let mut rng = SeededRng::new(0);
/// let spec = ConvSpec::builder()
///     .name("wa")
///     .in_channels(3)
///     .out_channels(8)
///     .algo(ConvAlgo::WinogradFlex { m: 4 })
///     .quant(QuantConfig::uniform(BitWidth::INT8))
///     .build()?;
/// let mut layer = WinogradAwareConv2d::from_spec(&spec, &mut rng)?;
/// let mut tape = Tape::new();
/// let x = tape.leaf(rng.uniform_tensor(&[1, 3, 8, 8], -1.0, 1.0));
/// let y = layer.try_forward(&mut tape, x, true)?;
/// assert_eq!(tape.value(y).shape(), &[1, 8, 8, 8]);
/// # Ok::<(), wa_nn::WaError>(())
/// ```
#[derive(Debug)]
pub struct WinogradAwareConv2d {
    /// Spatial filter `[K, C, r, r]` (the layer's *deploy-time* weights —
    /// Winograd-aware training does not change model size, §1).
    pub weight: Param,
    /// Optional bias `[K]`.
    pub bias: Option<Param>,
    /// Output transform `Aᵀ` `[m, n]`; trainable iff `-flex`.
    pub at: Param,
    /// Filter transform `G` `[n, r]`; trainable iff `-flex`.
    pub g: Param,
    /// Input transform `Bᵀ` `[n, n]`; trainable iff `-flex`.
    pub bt: Param,
    /// Quantization applied to weights, activations and every intermediate.
    pub quant: QuantConfig,
    m: usize,
    r: usize,
    pad: usize,
    obs: WinogradObservers,
    /// Memoized quantized Winograd-domain filter `G·g·Gᵀ` rows
    /// (`[K·C, n²]`), tagged with the [`QuantConfig`] it was derived
    /// under. The weights are constant across a batch, so the [`Infer`]
    /// path derives this once and reuses it for every chunk of every
    /// [`wa_nn::BatchExecutor`] run instead of re-transforming per chunk.
    /// Tensor storage is copy-on-write, so handing the memoized value out
    /// is a *shared handle* (an O(1) refcount bump): every worker tape
    /// aliases one transform buffer rather than receiving a guarded copy.
    /// Invalidated by every `&mut self` path that can change what the
    /// derivation would produce (`forward`, `visit_params`,
    /// `reset_statistics`) and by a `quant` change; code that mutates the
    /// public parameter fields directly must call
    /// [`WinogradAwareConv2d::invalidate_filter_cache`].
    filter_cache: Mutex<Option<(QuantConfig, Tensor)>>,
    /// Memoized [`Int8Filter`] for the [`Execution::Int8`] path, derived
    /// from [`WinogradAwareConv2d::cached_filter`] and shared across
    /// [`wa_nn::BatchExecutor`] workers as an `Arc` handle. Invalidated
    /// together with `filter_cache`.
    filter_cache_i8: Mutex<Option<(QuantConfig, Arc<Int8Filter>)>>,
}

impl WinogradAwareConv2d {
    /// Creates a Winograd-aware layer `F(m×m, r×r)` from a validated
    /// [`ConvSpec`], with Kaiming weights and Cook-Toom-initialized
    /// transforms (canonical Lavin & Gray matrices for F2/F4 with r = 3).
    ///
    /// The spec's [`crate::ConvAlgo`] selects the tile size `m` and
    /// whether the transforms are learnable (`-flex`).
    ///
    /// # Errors
    ///
    /// [`WaError::UnsupportedAlgo`] if the spec's algorithm is im2row or
    /// violates a Winograd constraint; [`WaError::InvalidSpec`] for bad
    /// geometry.
    pub fn from_spec(spec: &ConvSpec, rng: &mut SeededRng) -> Result<WinogradAwareConv2d, WaError> {
        spec.validate()?;
        let name = &spec.name;
        let weight = Param::new(
            format!("{name}.weight"),
            rng.kaiming_tensor(&[
                spec.out_channels,
                spec.in_channels,
                spec.kernel,
                spec.kernel,
            ]),
        );
        let bias = spec
            .bias
            .then(|| Param::new(format!("{name}.bias"), Tensor::zeros(&[spec.out_channels])));
        Self::from_spec_with_weight(spec, weight, bias)
    }

    /// Builds the layer around existing weight/bias parameters — the
    /// surgery path used to convert a trained direct-convolution model
    /// into its Winograd-aware counterpart (paper Table 1 / Figure 6).
    ///
    /// # Errors
    ///
    /// [`WaError::ShapeMismatch`] if `weight` is not the 4-D
    /// square-kernel `[K, C, r, r]` tensor the spec describes;
    /// [`WaError::UnsupportedAlgo`] if the spec's algorithm is not a
    /// Winograd variant.
    pub fn from_spec_with_weight(
        spec: &ConvSpec,
        weight: Param,
        bias: Option<Param>,
    ) -> Result<WinogradAwareConv2d, WaError> {
        spec.validate()?;
        let Some(m) = spec.algo.tile_m() else {
            return Err(WaError::unsupported(
                spec.algo,
                "WinogradAwareConv2d requires a Winograd algorithm, not im2row",
            ));
        };
        let flex = spec.algo.is_flex();
        let r = spec.kernel;
        let expected = [spec.out_channels, spec.in_channels, r, r];
        if weight.value.shape() != expected {
            return Err(WaError::shape(
                format!("WinogradAwareConv2d `{}` weight", spec.name),
                &expected,
                weight.value.shape(),
            ));
        }
        let name = &spec.name;
        let t = WinogradTransform::canonical(m, r);
        let mk = |suffix: &str, v: &Tensor| {
            if flex {
                Param::new(format!("{name}.{suffix}"), v.clone())
            } else {
                Param::frozen(format!("{name}.{suffix}"), v.clone())
            }
        };
        Ok(WinogradAwareConv2d {
            at: mk("at", t.at()),
            g: mk("g", t.g()),
            bt: mk("bt", t.bt()),
            weight,
            bias,
            quant: spec.quant,
            m,
            r,
            pad: spec.pad,
            obs: WinogradObservers::new(m + r - 1),
            filter_cache: Mutex::new(None),
            filter_cache_i8: Mutex::new(None),
        })
    }

    /// Output tile size `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Filter size `r`.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Input tile size `n = m + r − 1`.
    pub fn input_tile(&self) -> usize {
        self.m + self.r - 1
    }

    /// Whether the transforms are trainable (`-flex`).
    pub fn is_flex(&self) -> bool {
        self.at.trainable
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.weight.value.dim(0)
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.weight.value.dim(1)
    }

    /// The current transform triple (e.g. to persist learned `-flex`
    /// transforms or hand them to the latency model).
    pub fn transform(&self) -> WinogradTransform {
        WinogradTransform::from_matrices(
            self.m,
            self.r,
            self.at.value.clone(),
            self.g.value.clone(),
            self.bt.value.clone(),
        )
    }

    /// Run-time weight-memory growth factor `n²/r²` (1.78× for F2, 4× for
    /// F4 — paper §3.1).
    pub fn weight_memory_factor(&self) -> f64 {
        let n = self.input_tile() as f64;
        (n * n) / (self.r * self.r) as f64
    }

    /// Zero-padding applied by the layer.
    pub fn pad_size(&self) -> usize {
        self.pad
    }

    /// The transform-domain quantization policy in effect.
    pub fn tap_policy(&self) -> TapPolicy {
        self.quant.transform
    }

    /// Read-only view of the tap-wise calibration state of the two
    /// Winograd-domain sites, as `(BᵀdB, G·g·Gᵀ)`. Meaningful when
    /// [`WinogradAwareConv2d::tap_policy`] is [`TapPolicy::PerTap`]; the
    /// state exists (cold) under `PerLayer` too so a policy switch keeps
    /// prior calibration.
    pub fn tap_calibration(&self) -> (&TapQuant, &TapQuant) {
        (&self.obs.bdb_taps, &self.obs.ggt_taps)
    }

    /// Mutable view of the tap-wise calibration state (`(BᵀdB, G·g·Gᵀ)`)
    /// — the hook for installing per-tap bit-width overrides
    /// ([`TapQuant::set_bit_overrides`]) or hand-set ranges. Invalidates
    /// the memoized filter transform, since `G·g·Gᵀ` is derived through
    /// these scales.
    pub fn tap_calibration_mut(&mut self) -> (&mut TapQuant, &mut TapQuant) {
        self.invalidate_filter_cache();
        (&mut self.obs.bdb_taps, &mut self.obs.ggt_taps)
    }

    /// Drops the memoized quantized filter transform. Called internally
    /// by every `&mut self` path of the [`Layer`] API; only needed
    /// explicitly after mutating the public parameter fields (`weight`,
    /// `g`, …) or observers outside that API.
    pub fn invalidate_filter_cache(&mut self) {
        *self
            .filter_cache
            .get_mut()
            .expect("filter cache lock poisoned") = None;
        *self
            .filter_cache_i8
            .get_mut()
            .expect("int8 filter cache lock poisoned") = None;
    }

    /// The quantized `G·g·Gᵀ` rows for the current weights/quant config,
    /// derived on a scratch tape the first time and memoized. Values are
    /// bit-identical to the inline derivation: the same
    /// [`filter_u_rows`] ops run on the same inputs through the same
    /// read-only `Q` sites. The returned tensor is a shared handle onto
    /// the cached buffer (copy-on-write storage), so concurrent callers
    /// cost one refcount bump each, not a buffer copy.
    fn cached_filter(&self) -> Tensor {
        let mut guard = self
            .filter_cache
            .lock()
            .expect("filter cache lock poisoned");
        if let Some((q, t)) = &*guard {
            if *q == self.quant {
                return t.clone();
            }
        }
        let cfg = self.pipeline_cfg();
        let policy = self.quant.transform;
        let mut tape = Tape::new();
        let w = tape.param_ref(&self.weight);
        let g = tape.param_ref(&self.g);
        let wq = infer_quant(&mut tape, w, cfg.wbits, self.obs.site(QuantSite::Weight));
        let u = filter_u_rows(
            &mut tape,
            wq,
            g,
            cfg,
            &mut |t, v, bits, site| match (policy, site) {
                (TapPolicy::PerTap, QuantSite::Ggt) => {
                    infer_quant_taps(t, v, bits, &self.obs.ggt_taps)
                }
                _ => infer_quant(t, v, bits, self.obs.site(site)),
            },
        );
        let value = tape.value(u).clone();
        *guard = Some((self.quant, value.clone()));
        value
    }

    /// Rejects tap bit-widths the `i8` kernel cannot carry (`FP32` or
    /// wider than 8 bits), naming the offending Winograd-domain site.
    fn check_tap_bits(&self, site: &str, bits: &[BitWidth]) -> Result<(), WaError> {
        for &b in bits {
            let bad = match b {
                BitWidth::Fp32 => true,
                b => b.qmax() > i8::MAX as i32,
            };
            if bad {
                return Err(WaError::invalid(
                    "WinogradAwareConv2d",
                    "quant.execution",
                    format!(
                        "`{}`: int8 execution requires every {site} tap at \
                         most 8 bits, got {b}",
                        self.weight.name
                    ),
                ));
            }
        }
        Ok(())
    }

    /// The prepacked integer filter for the current weights/quant config.
    /// Re-quantizing [`WinogradAwareConv2d::cached_filter`] is exact on
    /// calibrated state: the cached values already sit on the `G·g·Gᵀ`
    /// site's grid, so `round(q·s/s) = q` recovers the integers
    /// bit-for-bit. (A never-calibrated site derives a one-off scale from
    /// the quantized rows themselves, which may drift sub-quantum — the
    /// serving path refuses uncalibrated int8 checkpoints before this
    /// matters.)
    fn cached_filter_i8(&self) -> Result<Arc<Int8Filter>, WaError> {
        {
            let guard = self
                .filter_cache_i8
                .lock()
                .expect("int8 filter cache lock poisoned");
            if let Some((q, f)) = &*guard {
                if *q == self.quant {
                    return Ok(f.clone());
                }
            }
        }
        // derive outside the i8 lock: cached_filter takes its own lock
        let u = self.cached_filter(); // [K·C, n²], values on the Ggt grid
        let taps = self.input_tile() * self.input_tile();
        let wbits = self.quant.weights;
        let (u_bits, u_scales) = match self.quant.transform {
            TapPolicy::PerTap => {
                let tq = warm_taps(&self.obs.ggt_taps, &u);
                let bits = tq.effective_bits(wbits);
                let scales = tq.scales_for(&bits);
                (bits, scales)
            }
            TapPolicy::PerLayer => {
                let s = warm_scale(&self.obs.ggt, wbits, &u);
                (vec![wbits; taps], vec![s; taps])
            }
        };
        self.check_tap_bits("G·g·Gᵀ", &u_bits)?;
        let q_rows = quantize_i8_taps(&u, &u_bits, &u_scales);
        // permute [K·C, n²] → [n², K, C], the reference's `u_p` layout
        let (out_ch, in_ch) = (self.out_channels(), self.in_channels());
        let mut data = vec![0i8; out_ch * in_ch * taps];
        for k in 0..out_ch {
            for c in 0..in_ch {
                let src = &q_rows[(k * in_ch + c) * taps..][..taps];
                for (t, &q) in src.iter().enumerate() {
                    data[(t * out_ch + k) * in_ch + c] = q;
                }
            }
        }
        let f = Arc::new(Int8Filter {
            packed: PackedAI8::pack(&data, taps, out_ch, in_ch),
            scales: u_scales,
        });
        let mut guard = self
            .filter_cache_i8
            .lock()
            .expect("int8 filter cache lock poisoned");
        *guard = Some((self.quant, f.clone()));
        Ok(f)
    }

    /// The [`Execution::Int8`] inference pass. Numerically the pipeline
    /// is: f32 front half identical to the reference up to `Q(Bᵀ·d·B)`,
    /// then quantize per tap, batched `i8×i8→i32` GEMM against the
    /// memoized integer filter, fixed-point requantize onto the Hadamard
    /// grid, and an f32 back half identical to the reference from there.
    /// Per element the Hadamard-site output is within 1 quantum of its
    /// scale of the reference (exact integer arithmetic plus the
    /// [`Requantizer`]'s ±1 sliver).
    ///
    /// On a **calibrated** layer the halves run as fused eager kernels
    /// ([`fused_input_pack`] / [`fused_requant_output`]) that walk the
    /// tiles once and write straight into the packed GEMM operand /
    /// final output — bit-identical to the op-by-op tape sequence (the
    /// f32 GEMM accumulates in ascending-`k` order, and the fused dot
    /// products replicate it), but without materializing the ~10
    /// intermediate tensors per convolution. A layer with any cold
    /// quantization site falls back to the op-by-op pipeline, whose
    /// observer semantics (one-off scales derived from the tensor at
    /// hand) need the full intermediates.
    fn infer_int8(&self, tape: &mut Tape, x: Var) -> Result<Var, WaError> {
        if let Some(reason) = self.quant.int8_incompatibility() {
            return Err(WaError::invalid(
                "WinogradAwareConv2d",
                "quant.execution",
                format!("`{}`: {reason}", self.weight.name),
            ));
        }
        let cfg = self.pipeline_cfg();
        let (m, r) = (cfg.m, cfg.r);
        let n = m + r - 1;
        let taps = n * n;
        let (batch, h, w_sp) = {
            let v = tape.value(x);
            (v.dim(0), v.dim(2), v.dim(3))
        };
        let geom = TileGeometry::for_conv(h, w_sp, m, r, cfg.pad);
        let total_tiles = batch * geom.tiles();
        let (in_ch, out_ch) = (cfg.in_ch, cfg.out_ch);
        let abits = cfg.abits;

        let warm = self.obs.bd.observations() > 0
            && self.obs.hadamard.observations() > 0
            && self.obs.ay.observations() > 0
            && self.obs.aya.observations() > 0
            && match self.quant.transform {
                TapPolicy::PerTap => self.obs.bdb_taps.observations() > 0,
                TapPolicy::PerLayer => self.obs.bdb.observations() > 0,
            };
        if warm && supports_tile(n, m) {
            return self.infer_int8_fused(tape, x, &geom);
        }

        // -- f32 front half: identical ops to the reference up to (but
        //    not including) the Q(Bᵀ·d·B) site
        let xq = infer_quant(tape, x, abits, &self.obs.input);
        let bt = tape.param_ref(&self.bt);
        let v_pre = {
            let _span = wa_obs::stage_span!("winograd.input_transform");
            let xp = tape.pad_tiles(xq, geom);
            let tiles = tape.gather_tiles(xp, geom); // [B·T·C, n²]
            let rows = total_tiles * in_ch;
            let t1 = tape.reshape(tiles, &[rows * n, n]);
            let t2 = tape.matmul_nt(t1, bt);
            let t2q = infer_quant(tape, t2, abits, &self.obs.bd);
            let t3 = tape.reshape(t2q, &[rows, n * n]);
            let t4 = tape.tile_transpose(t3, n, n);
            let t5 = tape.reshape(t4, &[rows * n, n]);
            let t6 = tape.matmul_nt(t5, bt);
            let t7 = tape.reshape(t6, &[rows, n * n]);
            tape.tile_transpose(t7, n, n) // BᵀdB, pre-quant
        };

        // -- integer middle: Q(Bᵀ·d·B) to i8 per tap, one i8 GEMM per
        //    Winograd coordinate, requantize onto the Hadamard grid
        let filter = self.cached_filter_i8()?;
        let mm_t = {
            let _span = wa_obs::stage_span!("int8.winograd_gemm");
            let v_t = tape.value(v_pre);
            let (v_bits, v_scales) = match self.quant.transform {
                TapPolicy::PerTap => {
                    let tq = warm_taps(&self.obs.bdb_taps, v_t);
                    let bits = tq.effective_bits(abits);
                    let scales = tq.scales_for(&bits);
                    (bits, scales)
                }
                TapPolicy::PerLayer => {
                    let s = warm_scale(&self.obs.bdb, abits, v_t);
                    (vec![abits; taps], vec![s; taps])
                }
            };
            self.check_tap_bits("Bᵀ·d·B", &v_bits)?;
            let qv_rows = quantize_i8_taps(v_t, &v_bits, &v_scales);
            // permute [B·T·C, n²] → [n², C, T], the reference's `v_p`
            let mut v_p = vec![0i8; total_tiles * in_ch * taps];
            for tile in 0..total_tiles {
                for c in 0..in_ch {
                    let src = &qv_rows[(tile * in_ch + c) * taps..][..taps];
                    for (t, &q) in src.iter().enumerate() {
                        v_p[(t * in_ch + c) * total_tiles + tile] = q;
                    }
                }
            }
            let pb = PackedBI8::pack(&v_p, taps, in_ch, total_tiles);
            let mut acc = vec![0i32; taps * out_ch * total_tiles];
            gemm_i8_prepacked(&filter.packed, &pb, &mut acc);
            let block = out_ch * total_tiles;
            let s_h = if self.obs.hadamard.observations() > 0 {
                self.obs.hadamard.scale(abits)
            } else {
                // cold one-off: dequantize the accumulator and let a
                // scratch observer derive the range, like infer_quant
                // would from the f32 product
                let mut pre = Tensor::zeros(&[taps, out_ch, total_tiles]);
                let pd = pre.data_mut();
                for (t, chunk) in pd.chunks_mut(block).enumerate() {
                    let sq = filter.scales[t] as f64 * v_scales[t] as f64;
                    for (d, &a) in chunk.iter_mut().zip(&acc[t * block..]) {
                        *d = (a as f64 * sq) as f32;
                    }
                }
                let mut tmp = self.obs.hadamard.clone();
                tmp.observe(&pre);
                tmp.scale(abits)
            };
            let qmax_h = abits.qmax();
            let mut mm = Tensor::zeros(&[taps, out_ch, total_tiles]);
            let md = mm.data_mut();
            for (t, chunk) in md.chunks_mut(block).enumerate() {
                let req =
                    Requantizer::new(filter.scales[t] as f64 * v_scales[t] as f64 / s_h as f64);
                for (d, &a) in chunk.iter_mut().zip(&acc[t * block..]) {
                    *d = req.apply_clamped(a, qmax_h) as f32 * s_h;
                }
            }
            mm
        };

        // -- f32 back half: identical ops to the reference from the
        //    post-Hadamard permute onwards
        let mm = tape.leaf(mm_t);
        let at = tape.param_ref(&self.at);
        let _span = wa_obs::stage_span!("winograd.output_transform");
        let m3 = tape.permute3(mm, [taps, out_ch, total_tiles], [2, 1, 0]); // [T, K, n²]
        let orows = total_tiles * out_ch;
        let m_rows = tape.reshape(m3, &[orows, taps]);
        let o1 = tape.reshape(m_rows, &[orows * n, n]);
        let o2 = tape.matmul_nt(o1, at);
        let o2q = infer_quant(tape, o2, abits, &self.obs.ay);
        let o3 = tape.reshape(o2q, &[orows, n * m]);
        let o4 = tape.tile_transpose(o3, n, m);
        let o5 = tape.reshape(o4, &[orows * m, n]);
        let o6 = tape.matmul_nt(o5, at);
        let o7 = tape.reshape(o6, &[orows, m * m]);
        let y_rows = tape.tile_transpose(o7, m, m);
        let mut y = tape.assemble_output(y_rows, geom, batch, out_ch);
        if let Some(b) = self.bias.as_ref() {
            let bv = tape.param_ref(b);
            y = tape.add_bias_chan(y, bv);
        }
        Ok(infer_quant(tape, y, abits, &self.obs.aya))
    }

    /// The fused [`Execution::Int8`] pass for a calibrated layer: one
    /// eager tile walk per half plus the prepacked integer GEMM. Every
    /// quantization site must be warm and `n ≤ MAX_TILE` (the caller's
    /// dispatch guarantees both). Bit-identical to the op-by-op path —
    /// the `int8_pipeline` unit tests pin the equivalence with `==`.
    fn infer_int8_fused(
        &self,
        tape: &mut Tape,
        x: Var,
        geom: &TileGeometry,
    ) -> Result<Var, WaError> {
        let n = geom.tile();
        let taps = n * n;
        let abits = self.quant.activations;
        let qmax_a = abits.qmax();
        let (batch, in_ch, out_ch) = (
            tape.value(x).dim(0),
            self.in_channels(),
            self.out_channels(),
        );
        let total_tiles = batch * geom.tiles();
        let filter = self.cached_filter_i8()?;

        let xq = infer_quant(tape, x, abits, &self.obs.input);

        // per-tap grids at Q(Bᵀ·d·B) — the sites are warm by dispatch
        let (v_bits, v_scales) = match self.quant.transform {
            TapPolicy::PerTap => {
                let bits = self.obs.bdb_taps.effective_bits(abits);
                let scales = self.obs.bdb_taps.scales_for(&bits);
                (bits, scales)
            }
            TapPolicy::PerLayer => (vec![abits; taps], vec![self.obs.bdb.scale(abits); taps]),
        };
        self.check_tap_bits("Bᵀ·d·B", &v_bits)?;
        let v_qmaxes: Vec<i32> = v_bits.iter().map(|b| b.qmax()).collect();

        let mut pb = PackedBI8::zeroed(taps, in_ch, total_tiles);
        {
            let _span = wa_obs::stage_span!("winograd.input_transform");
            let fq = FrontQuant {
                s_bd: self.obs.bd.scale(abits),
                qmax_bd: qmax_a,
                v_scales: &v_scales,
                v_qmaxes: &v_qmaxes,
            };
            fused_input_pack(tape.value(xq), &self.bt.value, geom, &fq, &mut pb);
        }

        let mut acc = vec![0i32; taps * out_ch * total_tiles];
        {
            let _span = wa_obs::stage_span!("int8.winograd_gemm");
            gemm_i8_prepacked(&filter.packed, &pb, &mut acc);
        }

        let s_h = self.obs.hadamard.scale(abits);
        let reqs: Vec<Requantizer> = (0..taps)
            .map(|t| Requantizer::new(filter.scales[t] as f64 * v_scales[t] as f64 / s_h as f64))
            .collect();
        let y = {
            let _span = wa_obs::stage_span!("winograd.output_transform");
            let bq = BackQuant {
                reqs: &reqs,
                s_h,
                qmax_h: qmax_a,
                s_ay: self.obs.ay.scale(abits),
                qmax_ay: qmax_a,
                s_aya: self.obs.aya.scale(abits),
                qmax_aya: qmax_a,
            };
            fused_requant_output(
                &acc,
                &self.at.value,
                geom,
                batch,
                out_ch,
                self.bias.as_ref().map(|b| b.value.data()),
                &bq,
            )
        };
        Ok(tape.leaf(y))
    }

    fn pipeline_cfg(&self) -> PipelineCfg {
        PipelineCfg {
            m: self.m,
            r: self.r,
            pad: self.pad,
            in_ch: self.in_channels(),
            out_ch: self.out_channels(),
            abits: self.quant.activations,
            wbits: self.quant.weights,
        }
    }

    fn check_input(&self, shape: &[usize]) -> Result<(), WaError> {
        if shape.len() != 4 || shape[1] != self.in_channels() {
            return Err(WaError::shape(
                format!("WinogradAwareConv2d `{}` input", self.weight.name),
                &[0, self.in_channels(), 0, 0],
                shape,
            ));
        }
        if shape[2] + 2 * self.pad < self.r || shape[3] + 2 * self.pad < self.r {
            return Err(WaError::shape(
                format!(
                    "WinogradAwareConv2d `{}` spatial extent vs kernel",
                    self.weight.name
                ),
                &[self.r, self.r],
                &shape[2..],
            ));
        }
        Ok(())
    }
}

impl Layer for WinogradAwareConv2d {
    fn try_forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Result<Var, WaError> {
        self.check_input(tape.value(x).shape())?;
        Ok(self.forward(tape, x, train))
    }

    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var {
        // the pass may update observers (and training will mutate the
        // weights afterwards), so the memoized filter transform is stale
        self.invalidate_filter_cache();
        let cfg = self.pipeline_cfg();
        let vars = PipelineVars {
            filter: FilterVars::Spatial {
                w: tape.param(&mut self.weight),
                g: tape.param(&mut self.g),
            },
            at: tape.param(&mut self.at),
            bt: tape.param(&mut self.bt),
            bias: self.bias.as_mut().map(|b| tape.param(b)),
        };
        let policy = self.quant.transform;
        let obs = &mut self.obs;
        winograd_pipeline(
            tape,
            x,
            vars,
            cfg,
            &mut |t, v, bits, site| match (policy, site) {
                (TapPolicy::PerTap, QuantSite::Bdb) => {
                    observe_quant_taps(t, v, bits, &mut obs.bdb_taps, train)
                }
                (TapPolicy::PerTap, QuantSite::Ggt) => {
                    observe_quant_taps(t, v, bits, &mut obs.ggt_taps, train)
                }
                _ => observe_quant(t, v, bits, obs.site_mut(site), train),
            },
        )
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
        f(&mut self.at);
        f(&mut self.g);
        f(&mut self.bt);
        // visitors get `&mut Param` (optimizer steps, checkpoint
        // imports), so the memoized filter transform may now be stale
        self.invalidate_filter_cache();
    }

    fn reset_statistics(&mut self) {
        for site in [
            QuantSite::Input,
            QuantSite::Weight,
            QuantSite::Gg,
            QuantSite::Ggt,
            QuantSite::Bd,
            QuantSite::Bdb,
            QuantSite::Hadamard,
            QuantSite::Ay,
            QuantSite::Aya,
        ] {
            self.obs.site_mut(site).reset();
        }
        // tap resets clear ranges but keep per-tap bit-width overrides
        // (configuration, not statistics)
        self.obs.bdb_taps.reset();
        self.obs.ggt_taps.reset();
        self.invalidate_filter_cache();
    }

    fn visit_quant_state(&mut self, f: &mut dyn FnMut(&str, QuantStateMut<'_>)) {
        let prefix = self.weight.name.trim_end_matches(".weight").to_string();
        let per_tap = self.quant.transform == TapPolicy::PerTap;
        let obs = &mut self.obs;
        let sites: [(&str, &mut Observer); 7] = [
            ("input", &mut obs.input),
            ("weight", &mut obs.weight),
            ("gg", &mut obs.gg),
            ("bd", &mut obs.bd),
            ("hadamard", &mut obs.hadamard),
            ("ay", &mut obs.ay),
            ("aya", &mut obs.aya),
        ];
        for (suffix, o) in sites {
            f(&format!("{prefix}.q.{suffix}"), QuantStateMut::Observer(o));
        }
        // the two Winograd-domain sites surface the state the active
        // policy actually quantizes through
        if per_tap {
            f(
                &format!("{prefix}.q.bdb"),
                QuantStateMut::Taps(&mut obs.bdb_taps),
            );
            f(
                &format!("{prefix}.q.ggt"),
                QuantStateMut::Taps(&mut obs.ggt_taps),
            );
        } else {
            f(
                &format!("{prefix}.q.bdb"),
                QuantStateMut::Observer(&mut obs.bdb),
            );
            f(
                &format!("{prefix}.q.ggt"),
                QuantStateMut::Observer(&mut obs.ggt),
            );
        }
        // visitors get mutable calibration state (checkpoint imports),
        // so the memoized filter transform may now be stale; read-only
        // visitors (checkpoint export) pay one re-derivation on the next
        // inference — exports happen at load/save time, not per request
        self.invalidate_filter_cache();
    }
}

impl Infer for WinogradAwareConv2d {
    fn infer(&self, tape: &mut Tape, x: Var) -> Result<Var, WaError> {
        self.check_input(tape.value(x).shape())?;
        if self.quant.execution == Execution::Int8 {
            return self.infer_int8(tape, x);
        }
        let cfg = self.pipeline_cfg();
        let u_rows = tape.leaf(self.cached_filter());
        let vars = PipelineVars {
            filter: FilterVars::Transformed(u_rows),
            at: tape.param_ref(&self.at),
            bt: tape.param_ref(&self.bt),
            bias: self.bias.as_ref().map(|b| tape.param_ref(b)),
        };
        let policy = self.quant.transform;
        Ok(winograd_pipeline(
            tape,
            x,
            vars,
            cfg,
            &mut |t, v, bits, site| match (policy, site) {
                (TapPolicy::PerTap, QuantSite::Bdb) => {
                    infer_quant_taps(t, v, bits, &self.obs.bdb_taps)
                }
                (TapPolicy::PerTap, QuantSite::Ggt) => {
                    infer_quant_taps(t, v, bits, &self.obs.ggt_taps)
                }
                _ => infer_quant(t, v, bits, self.obs.site(site)),
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv_layer::ConvAlgo;
    use wa_quant::BitWidth;
    use wa_tensor::conv2d_direct;

    fn spec(
        in_ch: usize,
        out_ch: usize,
        m: usize,
        r: usize,
        flex: bool,
        quant: QuantConfig,
    ) -> ConvSpec {
        let algo = if flex {
            ConvAlgo::WinogradFlex { m }
        } else {
            ConvAlgo::Winograd { m }
        };
        ConvSpec::builder()
            .name("wa")
            .in_channels(in_ch)
            .out_channels(out_ch)
            .kernel(r)
            .pad(1)
            .algo(algo)
            .quant(quant)
            .build()
            .unwrap()
    }

    fn fwd(layer: &mut WinogradAwareConv2d, x: &Tensor, train: bool) -> Tensor {
        let mut tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let y = layer.forward(&mut tape, xv, train);
        tape.value(y).clone()
    }

    #[test]
    fn fp32_matches_direct_convolution() {
        let mut rng = SeededRng::new(1);
        for m in [2usize, 4] {
            let mut layer = WinogradAwareConv2d::from_spec(
                &spec(3, 4, m, 3, false, QuantConfig::FP32),
                &mut rng,
            )
            .unwrap();
            let x = rng.uniform_tensor(&[2, 3, 8, 8], -1.0, 1.0);
            let got = fwd(&mut layer, &x, false);
            let want = conv2d_direct(&x, &layer.weight.value, None, 1, 1);
            assert_eq!(got.shape(), want.shape());
            for (a, b) in got.data().iter().zip(want.data()) {
                assert!((a - b).abs() < 1e-3, "F{}: {} vs {}", m, a, b);
            }
        }
    }

    #[test]
    fn odd_spatial_sizes_with_tile_waste() {
        let mut rng = SeededRng::new(2);
        let mut layer =
            WinogradAwareConv2d::from_spec(&spec(2, 3, 4, 3, false, QuantConfig::FP32), &mut rng)
                .unwrap();
        let x = rng.uniform_tensor(&[1, 2, 7, 9], -1.0, 1.0);
        let got = fwd(&mut layer, &x, false);
        let want = conv2d_direct(&x, &layer.weight.value, None, 1, 1);
        assert_eq!(got.shape(), want.shape());
        for (a, b) in got.data().iter().zip(want.data()) {
            assert!((a - b).abs() < 1e-3, "{} vs {}", a, b);
        }
    }

    #[test]
    fn int8_f4_shows_winograd_error_while_f2_is_mild() {
        // Single-layer version of Table 1: quantize all intermediates and
        // compare with direct conv of the same (unquantized) weights.
        let mut rng = SeededRng::new(3);
        let x = rng.uniform_tensor(&[1, 4, 8, 8], -1.0, 1.0);
        let mut rel_err = |m: usize| {
            let mut layer = WinogradAwareConv2d::from_spec(
                &spec(4, 4, m, 3, false, QuantConfig::uniform(BitWidth::INT8)),
                &mut rng.fork(m as u64),
            )
            .unwrap();
            // warm up observers
            let _ = fwd(&mut layer, &x, true);
            let got = fwd(&mut layer, &x, false);
            let want = conv2d_direct(&x, &layer.weight.value, None, 1, 1);
            let num: f64 = got
                .data()
                .iter()
                .zip(want.data())
                .map(|(a, b)| ((a - b) as f64).powi(2))
                .sum();
            let den: f64 = want.data().iter().map(|v| (*v as f64).powi(2)).sum();
            (num / den).sqrt()
        };
        let e2 = rel_err(2);
        let e4 = rel_err(4);
        assert!(
            e2 < e4,
            "INT8 error must grow with tile size: F2 {} vs F4 {}",
            e2,
            e4
        );
    }

    #[test]
    fn flex_transforms_receive_gradients_static_do_not() {
        let mut rng = SeededRng::new(4);
        for flex in [true, false] {
            let mut layer = WinogradAwareConv2d::from_spec(
                &spec(2, 2, 2, 3, flex, QuantConfig::FP32),
                &mut rng,
            )
            .unwrap();
            let mut tape = Tape::new();
            let x = tape.leaf(rng.uniform_tensor(&[1, 2, 4, 4], -1.0, 1.0));
            let y = layer.forward(&mut tape, x, true);
            let loss = tape.sq_sum(y);
            let grads = tape.backward(loss);
            layer.visit_params(&mut |p| p.absorb(&grads));
            let bt_grad = layer.bt.grad.is_some();
            let w_grad = layer.weight.grad.is_some();
            assert!(w_grad, "weights always receive gradients");
            assert_eq!(bt_grad, flex, "transform gradient presence must track flex");
            if flex {
                assert!(layer.bt.grad.as_ref().unwrap().max_abs() > 0.0);
            }
        }
    }

    #[test]
    fn surgery_preserves_weights() {
        let mut rng = SeededRng::new(5);
        let w = Param::new("w", rng.kaiming_tensor(&[4, 3, 3, 3]));
        let wv = w.value.clone();
        let layer = WinogradAwareConv2d::from_spec_with_weight(
            &spec(3, 4, 4, 3, true, QuantConfig::FP32),
            w,
            None,
        )
        .unwrap();
        assert_eq!(layer.weight.value, wv);
        assert!((layer.weight_memory_factor() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn bias_is_applied() {
        let mut rng = SeededRng::new(6);
        let w = Param::new("w", Tensor::zeros(&[2, 1, 3, 3]));
        let b = Param::new("b", Tensor::from_vec(vec![1.5, -0.5], &[2]));
        let mut layer = WinogradAwareConv2d::from_spec_with_weight(
            &spec(1, 2, 2, 3, false, QuantConfig::FP32),
            w,
            Some(b),
        )
        .unwrap();
        let x = rng.uniform_tensor(&[1, 1, 4, 4], -1.0, 1.0);
        let y = fwd(&mut layer, &x, false);
        for i in 0..16 {
            assert!((y.data()[i] - 1.5).abs() < 1e-4);
            assert!((y.data()[16 + i] + 0.5).abs() < 1e-4);
        }
    }

    #[test]
    fn transform_accessor_roundtrips() {
        let mut rng = SeededRng::new(7);
        let layer =
            WinogradAwareConv2d::from_spec(&spec(1, 1, 4, 3, false, QuantConfig::FP32), &mut rng)
                .unwrap();
        let t = layer.transform();
        assert_eq!(t.m(), 4);
        assert_eq!(t.bt(), WinogradTransform::canonical(4, 3).bt());
    }
}
