//! The Winograd-aware convolution layer (paper §3.2, Figure 2).

use std::sync::Mutex;

use wa_nn::{
    infer_quant, infer_quant_taps, observe_quant, observe_quant_taps, Infer, Layer, Param,
    QuantConfig, QuantStateMut, Tape, Var, WaError,
};
use wa_quant::{BitWidth, Observer, TapPolicy, TapQuant};
use wa_tensor::{SeededRng, Tensor};
use wa_winograd::{TileGeometry, WinogradTransform};

use crate::spec::ConvSpec;

/// Identifies one quantization point `Qx` of Figure 2.
#[derive(Clone, Copy)]
enum QuantSite {
    /// Input activations `d`.
    Input,
    /// Spatial weights `g`.
    Weight,
    /// One-sided filter transform `G·g`.
    Gg,
    /// Winograd-domain filter `G·g·Gᵀ`.
    Ggt,
    /// One-sided input transform `Bᵀ·d`.
    Bd,
    /// Winograd-domain input `Bᵀ·d·B`.
    Bdb,
    /// Elementwise product (per-coordinate GEMM output).
    Hadamard,
    /// One-sided output transform `Aᵀ·y`.
    Ay,
    /// Layer output `Aᵀ·y·A`.
    Aya,
}

/// Range observers for every quantization point `Qx` of Figure 2, plus
/// the tap-wise calibration of the two **Winograd-domain** sites. The
/// tensors at `Q(Bᵀ·d·B)` and `Q(G·g·Gᵀ)` are rows of `n²` taps, so under
/// [`TapPolicy::PerTap`] those two sites quantize through [`TapQuant`]
/// (one scale per tap position) instead of their scalar observer; every
/// other site is per-tensor under either policy.
#[derive(Debug)]
struct WinogradObservers {
    input: Observer,
    weight: Observer,
    gg: Observer,  // G·g
    ggt: Observer, // G·g·Gᵀ
    bd: Observer,  // Bᵀ·d
    bdb: Observer, // Bᵀ·d·B
    hadamard: Observer,
    ay: Observer,  // Aᵀ·y
    aya: Observer, // Aᵀ·y·A (layer output)
    /// Tap-wise state for `Bᵀ·d·B` (used iff the policy is `PerTap`).
    bdb_taps: TapQuant,
    /// Tap-wise state for `G·g·Gᵀ` (used iff the policy is `PerTap`).
    ggt_taps: TapQuant,
}

impl WinogradObservers {
    /// Fresh observers for an `n×n` input tile.
    fn new(n: usize) -> WinogradObservers {
        WinogradObservers {
            input: Observer::default(),
            weight: Observer::default(),
            gg: Observer::default(),
            ggt: Observer::default(),
            bd: Observer::default(),
            bdb: Observer::default(),
            hadamard: Observer::default(),
            ay: Observer::default(),
            aya: Observer::default(),
            bdb_taps: TapQuant::new(n),
            ggt_taps: TapQuant::new(n),
        }
    }

    fn site(&self, s: QuantSite) -> &Observer {
        match s {
            QuantSite::Input => &self.input,
            QuantSite::Weight => &self.weight,
            QuantSite::Gg => &self.gg,
            QuantSite::Ggt => &self.ggt,
            QuantSite::Bd => &self.bd,
            QuantSite::Bdb => &self.bdb,
            QuantSite::Hadamard => &self.hadamard,
            QuantSite::Ay => &self.ay,
            QuantSite::Aya => &self.aya,
        }
    }

    fn site_mut(&mut self, s: QuantSite) -> &mut Observer {
        match s {
            QuantSite::Input => &mut self.input,
            QuantSite::Weight => &mut self.weight,
            QuantSite::Gg => &mut self.gg,
            QuantSite::Ggt => &mut self.ggt,
            QuantSite::Bd => &mut self.bd,
            QuantSite::Bdb => &mut self.bdb,
            QuantSite::Hadamard => &mut self.hadamard,
            QuantSite::Ay => &mut self.ay,
            QuantSite::Aya => &mut self.aya,
        }
    }
}

/// How the pipeline obtains the Winograd-domain filter `G·g·Gᵀ`.
#[derive(Clone, Copy)]
enum FilterVars {
    /// Spatial weights + `G` registered on this tape: quantize and
    /// transform inline (training, and any path that needs gradients or
    /// observer updates for the weight-side sites).
    Spatial {
        /// Spatial filter `[K, C, r, r]`.
        w: Var,
        /// Filter transform `G` `[n, r]`.
        g: Var,
    },
    /// The already-quantized transform rows `[K·C, n²]`, computed once
    /// and injected as a leaf — the weights are constant across a batch,
    /// so inference reuses one derivation for every chunk.
    Transformed(Var),
}

/// Tape variables for the layer's parameters, registered by the caller
/// (mutably via [`Tape::param`] in training, read-only via
/// [`Tape::param_ref`] in inference).
struct PipelineVars {
    filter: FilterVars,
    at: Var,
    bt: Var,
    bias: Option<Var>,
}

/// Static layer configuration copied out of the struct so the pipeline
/// borrows neither the layer nor its observers.
#[derive(Clone, Copy)]
struct PipelineCfg {
    m: usize,
    r: usize,
    pad: usize,
    in_ch: usize,
    out_ch: usize,
    abits: BitWidth,
    wbits: BitWidth,
}

/// The filter half of the pipeline: quantized spatial weights `wq` →
/// `G·g·Gᵀ` rows `[K·C, n²]`, with the `Q(G·g)` / `Q(G·g·Gᵀ)` sites
/// realized through `quant`. Shared by the inline (training) path and the
/// per-model filter cache, so both derive bit-identical values.
fn filter_u_rows(
    tape: &mut Tape,
    wq: Var,
    g: Var,
    cfg: PipelineCfg,
    quant: &mut dyn FnMut(&mut Tape, Var, BitWidth, QuantSite) -> Var,
) -> Var {
    let _span = wa_obs::stage_span!("winograd.filter_transform");
    let (r, n) = (cfg.r, cfg.m + cfg.r - 1);
    let wrows = cfg.out_ch * cfg.in_ch;
    let w1 = tape.reshape(wq, &[wrows * r, r]);
    let w2 = tape.matmul_nt(w1, g); // g·Gᵀ ≡ (G·gᵀ)ᵀ
    let w2q = quant(tape, w2, cfg.wbits, QuantSite::Gg);
    let w3 = tape.reshape(w2q, &[wrows, r * n]);
    let w4 = tape.tile_transpose(w3, r, n);
    let w5 = tape.reshape(w4, &[wrows * n, r]);
    let w6 = tape.matmul_nt(w5, g);
    let w7 = tape.reshape(w6, &[wrows, n * n]);
    let u_rows = tape.tile_transpose(w7, n, n); // GgGᵀ
    quant(tape, u_rows, cfg.wbits, QuantSite::Ggt)
}

/// The Winograd-aware op pipeline `Y = Aᵀ[(G·g·Gᵀ) ⊙ (Bᵀ·d·B)]A`, shared
/// by the training forward (mutable observers) and the [`Infer`] path
/// (read-only observers): the `quant` callback realizes each `Qx` site
/// for its caller. Site calls happen in the same order as the original
/// single-path forward, so observer statistics evolve identically.
fn winograd_pipeline(
    tape: &mut Tape,
    x: Var,
    vars: PipelineVars,
    cfg: PipelineCfg,
    quant: &mut dyn FnMut(&mut Tape, Var, BitWidth, QuantSite) -> Var,
) -> Var {
    let (batch, in_ch, h, w) = {
        let v = tape.value(x);
        assert_eq!(
            v.ndim(),
            4,
            "WinogradAwareConv2d expects NCHW, got {:?}",
            v.shape()
        );
        (v.dim(0), v.dim(1), v.dim(2), v.dim(3))
    };
    assert_eq!(in_ch, cfg.in_ch, "input channels mismatch");
    let (m, r) = (cfg.m, cfg.r);
    let n = m + r - 1;
    let out_ch = cfg.out_ch;
    let geom = TileGeometry::for_conv(h, w, m, r, cfg.pad);
    let total_tiles = batch * geom.tiles();
    let (abits, wbits) = (cfg.abits, cfg.wbits);

    // -- inputs & parameters, quantized
    let xq = quant(tape, x, abits, QuantSite::Input);
    let wq = match vars.filter {
        FilterVars::Spatial { w, .. } => Some(quant(tape, w, wbits, QuantSite::Weight)),
        FilterVars::Transformed(_) => None,
    };
    let (at, bt) = (vars.at, vars.bt);

    // -- input transform BᵀdB (two one-sided products, Qx after each)
    let v_rows = {
        let _span = wa_obs::stage_span!("winograd.input_transform");
        let xp = tape.pad_tiles(xq, geom);
        let tiles = tape.gather_tiles(xp, geom); // [B·T·C, n²]
        let rows = total_tiles * in_ch;
        let t1 = tape.reshape(tiles, &[rows * n, n]);
        let t2 = tape.matmul_nt(t1, bt); // X·B  ≡ (Bᵀ·Xᵀ)ᵀ
        let t2q = quant(tape, t2, abits, QuantSite::Bd);
        let t3 = tape.reshape(t2q, &[rows, n * n]);
        let t4 = tape.tile_transpose(t3, n, n);
        let t5 = tape.reshape(t4, &[rows * n, n]);
        let t6 = tape.matmul_nt(t5, bt);
        let t7 = tape.reshape(t6, &[rows, n * n]);
        let v_rows = tape.tile_transpose(t7, n, n); // BᵀdB
        quant(tape, v_rows, abits, QuantSite::Bdb)
    };

    // -- filter transform GgGᵀ (or the precomputed rows)
    let u_rows = match (vars.filter, wq) {
        (FilterVars::Spatial { g, .. }, Some(wq)) => filter_u_rows(tape, wq, g, cfg, quant),
        (FilterVars::Transformed(u), _) => u,
        (FilterVars::Spatial { .. }, None) => unreachable!("wq is Some iff filter is Spatial"),
    };

    // -- Hadamard product + summation across channels, as one GEMM per
    //    Winograd-domain coordinate (Maji et al. 2019 formulation)
    let mm = {
        let _span = wa_obs::stage_span!("winograd.gemm");
        let v_p = tape.permute3(v_rows, [total_tiles, in_ch, n * n], [2, 1, 0]); // [n², C, T]
        let u_p = tape.permute3(u_rows, [out_ch, in_ch, n * n], [2, 0, 1]); // [n², K, C]
        let mm = tape.bmm(u_p, v_p, n * n, out_ch, in_ch, total_tiles); // [n², K, T]
        quant(tape, mm, abits, QuantSite::Hadamard)
    };

    // -- output transform AᵀyA
    let _span = wa_obs::stage_span!("winograd.output_transform");
    let m3 = tape.permute3(mm, [n * n, out_ch, total_tiles], [2, 1, 0]); // [T, K, n²]
    let orows = total_tiles * out_ch;
    let m_rows = tape.reshape(m3, &[orows, n * n]);
    let o1 = tape.reshape(m_rows, &[orows * n, n]);
    let o2 = tape.matmul_nt(o1, at); // Y·A
    let o2q = quant(tape, o2, abits, QuantSite::Ay);
    let o3 = tape.reshape(o2q, &[orows, n * m]);
    let o4 = tape.tile_transpose(o3, n, m);
    let o5 = tape.reshape(o4, &[orows * m, n]);
    let o6 = tape.matmul_nt(o5, at);
    let o7 = tape.reshape(o6, &[orows, m * m]);
    let y_rows = tape.tile_transpose(o7, m, m);

    let mut y = tape.assemble_output(y_rows, geom, batch, out_ch);
    if let Some(bv) = vars.bias {
        y = tape.add_bias_chan(y, bv);
    }
    quant(tape, y, abits, QuantSite::Aya)
}

/// A convolution layer evaluated *explicitly* as
/// `Y = Aᵀ[(G·g·Gᵀ) ⊙ (Bᵀ·d·B)]A` with every intermediate
/// fake-quantized, so training sees the numerical error of the Winograd
/// algorithm (the central idea of the paper).
///
/// * **Static** configurations (paper `WAF2`, `WAF4`, …) keep `Aᵀ`, `G`,
///   `Bᵀ` fixed at their Cook-Toom values.
/// * **Flex** configurations (`-flex`) mark them trainable, letting
///   back-propagation reshape the transforms to absorb quantization error
///   — worth up to 10% accuracy at INT8/F4 in the paper.
///
/// Stride is fixed at 1: the paper replaces stride-2 convolutions with
/// max-pool + dense conv because "there is no known equivalent for strided
/// Winograd convolutions" (§5.1).
///
/// # Example
///
/// ```
/// use wa_core::{ConvAlgo, ConvSpec, WinogradAwareConv2d};
/// use wa_nn::{Layer, QuantConfig, Tape};
/// use wa_quant::BitWidth;
/// use wa_tensor::SeededRng;
///
/// let mut rng = SeededRng::new(0);
/// let spec = ConvSpec::builder()
///     .name("wa")
///     .in_channels(3)
///     .out_channels(8)
///     .algo(ConvAlgo::WinogradFlex { m: 4 })
///     .quant(QuantConfig::uniform(BitWidth::INT8))
///     .build()?;
/// let mut layer = WinogradAwareConv2d::from_spec(&spec, &mut rng)?;
/// let mut tape = Tape::new();
/// let x = tape.leaf(rng.uniform_tensor(&[1, 3, 8, 8], -1.0, 1.0));
/// let y = layer.try_forward(&mut tape, x, true)?;
/// assert_eq!(tape.value(y).shape(), &[1, 8, 8, 8]);
/// # Ok::<(), wa_nn::WaError>(())
/// ```
#[derive(Debug)]
pub struct WinogradAwareConv2d {
    /// Spatial filter `[K, C, r, r]` (the layer's *deploy-time* weights —
    /// Winograd-aware training does not change model size, §1).
    pub weight: Param,
    /// Optional bias `[K]`.
    pub bias: Option<Param>,
    /// Output transform `Aᵀ` `[m, n]`; trainable iff `-flex`.
    pub at: Param,
    /// Filter transform `G` `[n, r]`; trainable iff `-flex`.
    pub g: Param,
    /// Input transform `Bᵀ` `[n, n]`; trainable iff `-flex`.
    pub bt: Param,
    /// Quantization applied to weights, activations and every intermediate.
    pub quant: QuantConfig,
    m: usize,
    r: usize,
    pad: usize,
    obs: WinogradObservers,
    /// Memoized quantized Winograd-domain filter `G·g·Gᵀ` rows
    /// (`[K·C, n²]`), tagged with the [`QuantConfig`] it was derived
    /// under. The weights are constant across a batch, so the [`Infer`]
    /// path derives this once and reuses it for every chunk of every
    /// [`wa_nn::BatchExecutor`] run instead of re-transforming per chunk.
    /// Tensor storage is copy-on-write, so handing the memoized value out
    /// is a *shared handle* (an O(1) refcount bump): every worker tape
    /// aliases one transform buffer rather than receiving a guarded copy.
    /// Invalidated by every `&mut self` path that can change what the
    /// derivation would produce (`forward`, `visit_params`,
    /// `reset_statistics`) and by a `quant` change; code that mutates the
    /// public parameter fields directly must call
    /// [`WinogradAwareConv2d::invalidate_filter_cache`].
    filter_cache: Mutex<Option<(QuantConfig, Tensor)>>,
}

impl WinogradAwareConv2d {
    /// Creates a Winograd-aware layer `F(m×m, r×r)` from a validated
    /// [`ConvSpec`], with Kaiming weights and Cook-Toom-initialized
    /// transforms (canonical Lavin & Gray matrices for F2/F4 with r = 3).
    ///
    /// The spec's [`crate::ConvAlgo`] selects the tile size `m` and
    /// whether the transforms are learnable (`-flex`).
    ///
    /// # Errors
    ///
    /// [`WaError::UnsupportedAlgo`] if the spec's algorithm is im2row or
    /// violates a Winograd constraint; [`WaError::InvalidSpec`] for bad
    /// geometry.
    pub fn from_spec(spec: &ConvSpec, rng: &mut SeededRng) -> Result<WinogradAwareConv2d, WaError> {
        spec.validate()?;
        let name = &spec.name;
        let weight = Param::new(
            format!("{name}.weight"),
            rng.kaiming_tensor(&[
                spec.out_channels,
                spec.in_channels,
                spec.kernel,
                spec.kernel,
            ]),
        );
        let bias = spec
            .bias
            .then(|| Param::new(format!("{name}.bias"), Tensor::zeros(&[spec.out_channels])));
        Self::from_spec_with_weight(spec, weight, bias)
    }

    /// Builds the layer around existing weight/bias parameters — the
    /// surgery path used to convert a trained direct-convolution model
    /// into its Winograd-aware counterpart (paper Table 1 / Figure 6).
    ///
    /// # Errors
    ///
    /// [`WaError::ShapeMismatch`] if `weight` is not the 4-D
    /// square-kernel `[K, C, r, r]` tensor the spec describes;
    /// [`WaError::UnsupportedAlgo`] if the spec's algorithm is not a
    /// Winograd variant.
    pub fn from_spec_with_weight(
        spec: &ConvSpec,
        weight: Param,
        bias: Option<Param>,
    ) -> Result<WinogradAwareConv2d, WaError> {
        spec.validate()?;
        let Some(m) = spec.algo.tile_m() else {
            return Err(WaError::unsupported(
                spec.algo,
                "WinogradAwareConv2d requires a Winograd algorithm, not im2row",
            ));
        };
        let flex = spec.algo.is_flex();
        let r = spec.kernel;
        let expected = [spec.out_channels, spec.in_channels, r, r];
        if weight.value.shape() != expected {
            return Err(WaError::shape(
                format!("WinogradAwareConv2d `{}` weight", spec.name),
                &expected,
                weight.value.shape(),
            ));
        }
        let name = &spec.name;
        let t = WinogradTransform::canonical(m, r);
        let mk = |suffix: &str, v: &Tensor| {
            if flex {
                Param::new(format!("{name}.{suffix}"), v.clone())
            } else {
                Param::frozen(format!("{name}.{suffix}"), v.clone())
            }
        };
        Ok(WinogradAwareConv2d {
            at: mk("at", t.at()),
            g: mk("g", t.g()),
            bt: mk("bt", t.bt()),
            weight,
            bias,
            quant: spec.quant,
            m,
            r,
            pad: spec.pad,
            obs: WinogradObservers::new(m + r - 1),
            filter_cache: Mutex::new(None),
        })
    }

    /// Output tile size `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Filter size `r`.
    pub fn r(&self) -> usize {
        self.r
    }

    /// Input tile size `n = m + r − 1`.
    pub fn input_tile(&self) -> usize {
        self.m + self.r - 1
    }

    /// Whether the transforms are trainable (`-flex`).
    pub fn is_flex(&self) -> bool {
        self.at.trainable
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.weight.value.dim(0)
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.weight.value.dim(1)
    }

    /// The current transform triple (e.g. to persist learned `-flex`
    /// transforms or hand them to the latency model).
    pub fn transform(&self) -> WinogradTransform {
        WinogradTransform::from_matrices(
            self.m,
            self.r,
            self.at.value.clone(),
            self.g.value.clone(),
            self.bt.value.clone(),
        )
    }

    /// Run-time weight-memory growth factor `n²/r²` (1.78× for F2, 4× for
    /// F4 — paper §3.1).
    pub fn weight_memory_factor(&self) -> f64 {
        let n = self.input_tile() as f64;
        (n * n) / (self.r * self.r) as f64
    }

    /// Zero-padding applied by the layer.
    pub fn pad_size(&self) -> usize {
        self.pad
    }

    /// The transform-domain quantization policy in effect.
    pub fn tap_policy(&self) -> TapPolicy {
        self.quant.transform
    }

    /// Read-only view of the tap-wise calibration state of the two
    /// Winograd-domain sites, as `(BᵀdB, G·g·Gᵀ)`. Meaningful when
    /// [`WinogradAwareConv2d::tap_policy`] is [`TapPolicy::PerTap`]; the
    /// state exists (cold) under `PerLayer` too so a policy switch keeps
    /// prior calibration.
    pub fn tap_calibration(&self) -> (&TapQuant, &TapQuant) {
        (&self.obs.bdb_taps, &self.obs.ggt_taps)
    }

    /// Mutable view of the tap-wise calibration state (`(BᵀdB, G·g·Gᵀ)`)
    /// — the hook for installing per-tap bit-width overrides
    /// ([`TapQuant::set_bit_overrides`]) or hand-set ranges. Invalidates
    /// the memoized filter transform, since `G·g·Gᵀ` is derived through
    /// these scales.
    pub fn tap_calibration_mut(&mut self) -> (&mut TapQuant, &mut TapQuant) {
        self.invalidate_filter_cache();
        (&mut self.obs.bdb_taps, &mut self.obs.ggt_taps)
    }

    /// Drops the memoized quantized filter transform. Called internally
    /// by every `&mut self` path of the [`Layer`] API; only needed
    /// explicitly after mutating the public parameter fields (`weight`,
    /// `g`, …) or observers outside that API.
    pub fn invalidate_filter_cache(&mut self) {
        *self
            .filter_cache
            .get_mut()
            .expect("filter cache lock poisoned") = None;
    }

    /// The quantized `G·g·Gᵀ` rows for the current weights/quant config,
    /// derived on a scratch tape the first time and memoized. Values are
    /// bit-identical to the inline derivation: the same
    /// [`filter_u_rows`] ops run on the same inputs through the same
    /// read-only `Q` sites. The returned tensor is a shared handle onto
    /// the cached buffer (copy-on-write storage), so concurrent callers
    /// cost one refcount bump each, not a buffer copy.
    fn cached_filter(&self) -> Tensor {
        let mut guard = self
            .filter_cache
            .lock()
            .expect("filter cache lock poisoned");
        if let Some((q, t)) = &*guard {
            if *q == self.quant {
                return t.clone();
            }
        }
        let cfg = self.pipeline_cfg();
        let policy = self.quant.transform;
        let mut tape = Tape::new();
        let w = tape.param_ref(&self.weight);
        let g = tape.param_ref(&self.g);
        let wq = infer_quant(&mut tape, w, cfg.wbits, self.obs.site(QuantSite::Weight));
        let u = filter_u_rows(
            &mut tape,
            wq,
            g,
            cfg,
            &mut |t, v, bits, site| match (policy, site) {
                (TapPolicy::PerTap, QuantSite::Ggt) => {
                    infer_quant_taps(t, v, bits, &self.obs.ggt_taps)
                }
                _ => infer_quant(t, v, bits, self.obs.site(site)),
            },
        );
        let value = tape.value(u).clone();
        *guard = Some((self.quant, value.clone()));
        value
    }

    fn pipeline_cfg(&self) -> PipelineCfg {
        PipelineCfg {
            m: self.m,
            r: self.r,
            pad: self.pad,
            in_ch: self.in_channels(),
            out_ch: self.out_channels(),
            abits: self.quant.activations,
            wbits: self.quant.weights,
        }
    }

    fn check_input(&self, shape: &[usize]) -> Result<(), WaError> {
        if shape.len() != 4 || shape[1] != self.in_channels() {
            return Err(WaError::shape(
                format!("WinogradAwareConv2d `{}` input", self.weight.name),
                &[0, self.in_channels(), 0, 0],
                shape,
            ));
        }
        if shape[2] + 2 * self.pad < self.r || shape[3] + 2 * self.pad < self.r {
            return Err(WaError::shape(
                format!(
                    "WinogradAwareConv2d `{}` spatial extent vs kernel",
                    self.weight.name
                ),
                &[self.r, self.r],
                &shape[2..],
            ));
        }
        Ok(())
    }
}

impl Layer for WinogradAwareConv2d {
    fn try_forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Result<Var, WaError> {
        self.check_input(tape.value(x).shape())?;
        Ok(self.forward(tape, x, train))
    }

    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var {
        // the pass may update observers (and training will mutate the
        // weights afterwards), so the memoized filter transform is stale
        self.invalidate_filter_cache();
        let cfg = self.pipeline_cfg();
        let vars = PipelineVars {
            filter: FilterVars::Spatial {
                w: tape.param(&mut self.weight),
                g: tape.param(&mut self.g),
            },
            at: tape.param(&mut self.at),
            bt: tape.param(&mut self.bt),
            bias: self.bias.as_mut().map(|b| tape.param(b)),
        };
        let policy = self.quant.transform;
        let obs = &mut self.obs;
        winograd_pipeline(
            tape,
            x,
            vars,
            cfg,
            &mut |t, v, bits, site| match (policy, site) {
                (TapPolicy::PerTap, QuantSite::Bdb) => {
                    observe_quant_taps(t, v, bits, &mut obs.bdb_taps, train)
                }
                (TapPolicy::PerTap, QuantSite::Ggt) => {
                    observe_quant_taps(t, v, bits, &mut obs.ggt_taps, train)
                }
                _ => observe_quant(t, v, bits, obs.site_mut(site), train),
            },
        )
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
        f(&mut self.at);
        f(&mut self.g);
        f(&mut self.bt);
        // visitors get `&mut Param` (optimizer steps, checkpoint
        // imports), so the memoized filter transform may now be stale
        self.invalidate_filter_cache();
    }

    fn reset_statistics(&mut self) {
        for site in [
            QuantSite::Input,
            QuantSite::Weight,
            QuantSite::Gg,
            QuantSite::Ggt,
            QuantSite::Bd,
            QuantSite::Bdb,
            QuantSite::Hadamard,
            QuantSite::Ay,
            QuantSite::Aya,
        ] {
            self.obs.site_mut(site).reset();
        }
        // tap resets clear ranges but keep per-tap bit-width overrides
        // (configuration, not statistics)
        self.obs.bdb_taps.reset();
        self.obs.ggt_taps.reset();
        self.invalidate_filter_cache();
    }

    fn visit_quant_state(&mut self, f: &mut dyn FnMut(&str, QuantStateMut<'_>)) {
        let prefix = self.weight.name.trim_end_matches(".weight").to_string();
        let per_tap = self.quant.transform == TapPolicy::PerTap;
        let obs = &mut self.obs;
        let sites: [(&str, &mut Observer); 7] = [
            ("input", &mut obs.input),
            ("weight", &mut obs.weight),
            ("gg", &mut obs.gg),
            ("bd", &mut obs.bd),
            ("hadamard", &mut obs.hadamard),
            ("ay", &mut obs.ay),
            ("aya", &mut obs.aya),
        ];
        for (suffix, o) in sites {
            f(&format!("{prefix}.q.{suffix}"), QuantStateMut::Observer(o));
        }
        // the two Winograd-domain sites surface the state the active
        // policy actually quantizes through
        if per_tap {
            f(
                &format!("{prefix}.q.bdb"),
                QuantStateMut::Taps(&mut obs.bdb_taps),
            );
            f(
                &format!("{prefix}.q.ggt"),
                QuantStateMut::Taps(&mut obs.ggt_taps),
            );
        } else {
            f(
                &format!("{prefix}.q.bdb"),
                QuantStateMut::Observer(&mut obs.bdb),
            );
            f(
                &format!("{prefix}.q.ggt"),
                QuantStateMut::Observer(&mut obs.ggt),
            );
        }
        // visitors get mutable calibration state (checkpoint imports),
        // so the memoized filter transform may now be stale; read-only
        // visitors (checkpoint export) pay one re-derivation on the next
        // inference — exports happen at load/save time, not per request
        self.invalidate_filter_cache();
    }
}

impl Infer for WinogradAwareConv2d {
    fn infer(&self, tape: &mut Tape, x: Var) -> Result<Var, WaError> {
        self.check_input(tape.value(x).shape())?;
        let cfg = self.pipeline_cfg();
        let u_rows = tape.leaf(self.cached_filter());
        let vars = PipelineVars {
            filter: FilterVars::Transformed(u_rows),
            at: tape.param_ref(&self.at),
            bt: tape.param_ref(&self.bt),
            bias: self.bias.as_ref().map(|b| tape.param_ref(b)),
        };
        let policy = self.quant.transform;
        Ok(winograd_pipeline(
            tape,
            x,
            vars,
            cfg,
            &mut |t, v, bits, site| match (policy, site) {
                (TapPolicy::PerTap, QuantSite::Bdb) => {
                    infer_quant_taps(t, v, bits, &self.obs.bdb_taps)
                }
                (TapPolicy::PerTap, QuantSite::Ggt) => {
                    infer_quant_taps(t, v, bits, &self.obs.ggt_taps)
                }
                _ => infer_quant(t, v, bits, self.obs.site(site)),
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv_layer::ConvAlgo;
    use wa_quant::BitWidth;
    use wa_tensor::conv2d_direct;

    fn spec(
        in_ch: usize,
        out_ch: usize,
        m: usize,
        r: usize,
        flex: bool,
        quant: QuantConfig,
    ) -> ConvSpec {
        let algo = if flex {
            ConvAlgo::WinogradFlex { m }
        } else {
            ConvAlgo::Winograd { m }
        };
        ConvSpec::builder()
            .name("wa")
            .in_channels(in_ch)
            .out_channels(out_ch)
            .kernel(r)
            .pad(1)
            .algo(algo)
            .quant(quant)
            .build()
            .unwrap()
    }

    fn fwd(layer: &mut WinogradAwareConv2d, x: &Tensor, train: bool) -> Tensor {
        let mut tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let y = layer.forward(&mut tape, xv, train);
        tape.value(y).clone()
    }

    #[test]
    fn fp32_matches_direct_convolution() {
        let mut rng = SeededRng::new(1);
        for m in [2usize, 4] {
            let mut layer = WinogradAwareConv2d::from_spec(
                &spec(3, 4, m, 3, false, QuantConfig::FP32),
                &mut rng,
            )
            .unwrap();
            let x = rng.uniform_tensor(&[2, 3, 8, 8], -1.0, 1.0);
            let got = fwd(&mut layer, &x, false);
            let want = conv2d_direct(&x, &layer.weight.value, None, 1, 1);
            assert_eq!(got.shape(), want.shape());
            for (a, b) in got.data().iter().zip(want.data()) {
                assert!((a - b).abs() < 1e-3, "F{}: {} vs {}", m, a, b);
            }
        }
    }

    #[test]
    fn odd_spatial_sizes_with_tile_waste() {
        let mut rng = SeededRng::new(2);
        let mut layer =
            WinogradAwareConv2d::from_spec(&spec(2, 3, 4, 3, false, QuantConfig::FP32), &mut rng)
                .unwrap();
        let x = rng.uniform_tensor(&[1, 2, 7, 9], -1.0, 1.0);
        let got = fwd(&mut layer, &x, false);
        let want = conv2d_direct(&x, &layer.weight.value, None, 1, 1);
        assert_eq!(got.shape(), want.shape());
        for (a, b) in got.data().iter().zip(want.data()) {
            assert!((a - b).abs() < 1e-3, "{} vs {}", a, b);
        }
    }

    #[test]
    fn int8_f4_shows_winograd_error_while_f2_is_mild() {
        // Single-layer version of Table 1: quantize all intermediates and
        // compare with direct conv of the same (unquantized) weights.
        let mut rng = SeededRng::new(3);
        let x = rng.uniform_tensor(&[1, 4, 8, 8], -1.0, 1.0);
        let mut rel_err = |m: usize| {
            let mut layer = WinogradAwareConv2d::from_spec(
                &spec(4, 4, m, 3, false, QuantConfig::uniform(BitWidth::INT8)),
                &mut rng.fork(m as u64),
            )
            .unwrap();
            // warm up observers
            let _ = fwd(&mut layer, &x, true);
            let got = fwd(&mut layer, &x, false);
            let want = conv2d_direct(&x, &layer.weight.value, None, 1, 1);
            let num: f64 = got
                .data()
                .iter()
                .zip(want.data())
                .map(|(a, b)| ((a - b) as f64).powi(2))
                .sum();
            let den: f64 = want.data().iter().map(|v| (*v as f64).powi(2)).sum();
            (num / den).sqrt()
        };
        let e2 = rel_err(2);
        let e4 = rel_err(4);
        assert!(
            e2 < e4,
            "INT8 error must grow with tile size: F2 {} vs F4 {}",
            e2,
            e4
        );
    }

    #[test]
    fn flex_transforms_receive_gradients_static_do_not() {
        let mut rng = SeededRng::new(4);
        for flex in [true, false] {
            let mut layer = WinogradAwareConv2d::from_spec(
                &spec(2, 2, 2, 3, flex, QuantConfig::FP32),
                &mut rng,
            )
            .unwrap();
            let mut tape = Tape::new();
            let x = tape.leaf(rng.uniform_tensor(&[1, 2, 4, 4], -1.0, 1.0));
            let y = layer.forward(&mut tape, x, true);
            let loss = tape.sq_sum(y);
            let grads = tape.backward(loss);
            layer.visit_params(&mut |p| p.absorb(&grads));
            let bt_grad = layer.bt.grad.is_some();
            let w_grad = layer.weight.grad.is_some();
            assert!(w_grad, "weights always receive gradients");
            assert_eq!(bt_grad, flex, "transform gradient presence must track flex");
            if flex {
                assert!(layer.bt.grad.as_ref().unwrap().max_abs() > 0.0);
            }
        }
    }

    #[test]
    fn surgery_preserves_weights() {
        let mut rng = SeededRng::new(5);
        let w = Param::new("w", rng.kaiming_tensor(&[4, 3, 3, 3]));
        let wv = w.value.clone();
        let layer = WinogradAwareConv2d::from_spec_with_weight(
            &spec(3, 4, 4, 3, true, QuantConfig::FP32),
            w,
            None,
        )
        .unwrap();
        assert_eq!(layer.weight.value, wv);
        assert!((layer.weight_memory_factor() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn bias_is_applied() {
        let mut rng = SeededRng::new(6);
        let w = Param::new("w", Tensor::zeros(&[2, 1, 3, 3]));
        let b = Param::new("b", Tensor::from_vec(vec![1.5, -0.5], &[2]));
        let mut layer = WinogradAwareConv2d::from_spec_with_weight(
            &spec(1, 2, 2, 3, false, QuantConfig::FP32),
            w,
            Some(b),
        )
        .unwrap();
        let x = rng.uniform_tensor(&[1, 1, 4, 4], -1.0, 1.0);
        let y = fwd(&mut layer, &x, false);
        for i in 0..16 {
            assert!((y.data()[i] - 1.5).abs() < 1e-4);
            assert!((y.data()[16 + i] + 0.5).abs() < 1e-4);
        }
    }

    #[test]
    fn transform_accessor_roundtrips() {
        let mut rng = SeededRng::new(7);
        let layer =
            WinogradAwareConv2d::from_spec(&spec(1, 1, 4, 3, false, QuantConfig::FP32), &mut rng)
                .unwrap();
        let t = layer.transform();
        assert_eq!(t.m(), 4);
        assert_eq!(t.bt(), WinogradTransform::canonical(4, 3).bt());
    }
}
