//! Algorithm-switchable convolution and post-training surgery.

use wa_nn::{Conv2d, Infer, Layer, Param, QuantConfig, Tape, Var, WaError};
use wa_tensor::SeededRng;

use crate::spec::{validate_algo_geometry, ConvSpec};
use crate::winograd_layer::WinogradAwareConv2d;

/// The convolution algorithm implementing a 3×3 (or 5×5) layer — the
/// choice wiNAS searches over (paper Figure 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConvAlgo {
    /// Patch-lowering + GEMM (lossless baseline).
    Im2row,
    /// Winograd-aware `F(m×m, r×r)` with static Cook-Toom transforms.
    Winograd {
        /// Output tile size `m` (2, 4 or 6 in the paper).
        m: usize,
    },
    /// Winograd-aware with learnable transforms (the paper's `-flex`).
    WinogradFlex {
        /// Output tile size `m`.
        m: usize,
    },
}

impl ConvAlgo {
    /// Output tile size for Winograd variants, `None` for im2row.
    pub fn tile_m(&self) -> Option<usize> {
        match self {
            ConvAlgo::Im2row => None,
            ConvAlgo::Winograd { m } | ConvAlgo::WinogradFlex { m } => Some(*m),
        }
    }

    /// Whether transforms are learnable.
    pub fn is_flex(&self) -> bool {
        matches!(self, ConvAlgo::WinogradFlex { .. })
    }
}

impl std::fmt::Display for ConvAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvAlgo::Im2row => write!(f, "im2row"),
            ConvAlgo::Winograd { m } => write!(f, "F{}", m),
            ConvAlgo::WinogradFlex { m } => write!(f, "F{}-flex", m),
        }
    }
}

impl std::str::FromStr for ConvAlgo {
    type Err = WaError;

    /// Parses the [`Display`](std::fmt::Display) form back (`"im2row"`,
    /// `"F2"`, `"F4-flex"`, …) — the encoding `ModelSpec` JSON documents
    /// and serving requests use. Note this only decodes the algorithm
    /// name; tile-size/geometry validity is checked where the algorithm
    /// is applied (spec builders, `validate_algo_geometry`).
    fn from_str(s: &str) -> Result<ConvAlgo, WaError> {
        let t = s.trim();
        if t == "im2row" {
            return Ok(ConvAlgo::Im2row);
        }
        let (body, flex) = match t.strip_suffix("-flex") {
            Some(body) => (body, true),
            None => (t, false),
        };
        if let Some(m) = body.strip_prefix('F').and_then(|m| m.parse::<usize>().ok()) {
            return Ok(if flex {
                ConvAlgo::WinogradFlex { m }
            } else {
                ConvAlgo::Winograd { m }
            });
        }
        Err(WaError::unsupported(
            t,
            "expected `im2row`, `F<m>` or `F<m>-flex`",
        ))
    }
}

/// A convolution layer that can be implemented by any [`ConvAlgo`] and
/// re-implemented in place (surgery) without losing its trained weights.
///
/// This is the unit the paper's experiments manipulate: Table 1 swaps
/// trained `im2row` layers to Winograd post-hoc; Figure 6 adapts them with
/// a few retraining epochs; wiNAS picks a per-layer algorithm.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // two layer kinds by design; boxing
                                     // would complicate every forward call
pub enum ConvLayer {
    /// Lowering-based convolution.
    Direct(Conv2d),
    /// Winograd-aware convolution.
    Winograd(WinogradAwareConv2d),
}

impl ConvLayer {
    /// Creates the layer described by a validated [`ConvSpec`].
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] / [`WaError::UnsupportedAlgo`] if the
    /// spec was mutated into an invalid state after building.
    pub fn from_spec(spec: &ConvSpec, rng: &mut SeededRng) -> Result<ConvLayer, WaError> {
        spec.validate()?;
        match spec.algo {
            ConvAlgo::Im2row => Ok(ConvLayer::Direct(Conv2d::from_spec(
                &spec.as_conv2d_spec()?,
                rng,
            )?)),
            ConvAlgo::Winograd { .. } | ConvAlgo::WinogradFlex { .. } => Ok(ConvLayer::Winograd(
                WinogradAwareConv2d::from_spec(spec, rng)?,
            )),
        }
    }

    /// The algorithm currently implementing this layer.
    pub fn algo(&self) -> ConvAlgo {
        match self {
            ConvLayer::Direct(_) => ConvAlgo::Im2row,
            ConvLayer::Winograd(w) => {
                if w.is_flex() {
                    ConvAlgo::WinogradFlex { m: w.m() }
                } else {
                    ConvAlgo::Winograd { m: w.m() }
                }
            }
        }
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        match self {
            ConvLayer::Direct(c) => c.out_channels(),
            ConvLayer::Winograd(w) => w.out_channels(),
        }
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        match self {
            ConvLayer::Direct(c) => c.in_channels(),
            ConvLayer::Winograd(w) => w.in_channels(),
        }
    }

    /// Kernel size `r`.
    pub fn kernel(&self) -> usize {
        match self {
            ConvLayer::Direct(c) => c.kernel(),
            ConvLayer::Winograd(w) => w.r(),
        }
    }

    /// Stride (always 1 for Winograd layers).
    pub fn stride(&self) -> usize {
        match self {
            ConvLayer::Direct(c) => c.stride,
            ConvLayer::Winograd(_) => 1,
        }
    }

    /// Current quantization config.
    pub fn quant(&self) -> QuantConfig {
        match self {
            ConvLayer::Direct(c) => c.quant,
            ConvLayer::Winograd(w) => w.quant,
        }
    }

    /// Sets the quantization config (used by wiNAS-Q to assign per-layer
    /// precision).
    pub fn set_quant(&mut self, q: QuantConfig) {
        match self {
            ConvLayer::Direct(c) => c.quant = q,
            ConvLayer::Winograd(w) => w.quant = q,
        }
    }

    /// The layer's current configuration as a [`ConvSpec`] (geometry,
    /// algorithm and precision — the round-trippable description wiNAS
    /// mutates).
    pub fn spec(&self) -> ConvSpec {
        let (name, pad, bias) = match self {
            ConvLayer::Direct(c) => (
                c.weight.name.trim_end_matches(".weight").to_string(),
                c.pad,
                c.bias.is_some(),
            ),
            ConvLayer::Winograd(w) => (
                w.weight.name.trim_end_matches(".weight").to_string(),
                w.pad_size(),
                w.bias.is_some(),
            ),
        };
        ConvSpec {
            name,
            in_channels: self.in_channels(),
            out_channels: self.out_channels(),
            kernel: self.kernel(),
            stride: self.stride(),
            pad,
            bias,
            algo: self.algo(),
            quant: self.quant(),
        }
    }

    /// **Surgery**: re-implements the layer with `algo`, carrying the
    /// trained weights (and bias) over and resetting observers. Converting
    /// to the same algorithm is a no-op.
    ///
    /// This is the paper's Table 1 experiment (swap after training) and
    /// the starting point of Figure 6 adaptation.
    ///
    /// # Errors
    ///
    /// [`WaError::UnsupportedAlgo`] when `algo` cannot implement this
    /// layer's geometry (e.g. converting a strided direct conv to
    /// Winograd) — the layer is left untouched.
    pub fn try_convert(&mut self, algo: ConvAlgo) -> Result<(), WaError> {
        if self.algo() == algo {
            return Ok(());
        }
        validate_algo_geometry(algo, self.kernel(), self.stride())?;
        let quant = self.quant();
        // Temporarily replace self with a cheap placeholder to take
        // ownership of the parameters.
        let placeholder_spec = ConvSpec::builder()
            .name("placeholder")
            .in_channels(1)
            .out_channels(1)
            .kernel(1)
            .pad(0)
            .build()
            .expect("placeholder spec is statically valid");
        let placeholder = ConvLayer::from_spec(&placeholder_spec, &mut SeededRng::new(0))
            .expect("placeholder layer is statically valid");
        let old = std::mem::replace(self, placeholder);
        let (weight, bias, pad, stride, name) = match old {
            ConvLayer::Direct(c) => {
                let name = c.weight.name.trim_end_matches(".weight").to_string();
                (c.weight, c.bias, c.pad, c.stride, name)
            }
            ConvLayer::Winograd(w) => {
                let name = w.weight.name.trim_end_matches(".weight").to_string();
                let pad = w.pad_size();
                (w.weight, w.bias, pad, 1, name)
            }
        };
        let spec = ConvSpec {
            name,
            in_channels: weight.value.dim(1),
            out_channels: weight.value.dim(0),
            kernel: weight.value.dim(2),
            stride,
            pad,
            bias: bias.is_some(),
            algo,
            quant,
        };
        *self = match algo {
            ConvAlgo::Im2row => {
                let mut conv = Conv2d::from_spec(&spec.as_conv2d_spec()?, &mut SeededRng::new(0))?;
                conv.weight = weight;
                conv.bias = bias;
                ConvLayer::Direct(conv)
            }
            ConvAlgo::Winograd { .. } | ConvAlgo::WinogradFlex { .. } => ConvLayer::Winograd(
                WinogradAwareConv2d::from_spec_with_weight(&spec, weight, bias)?,
            ),
        };
        Ok(())
    }

    /// Panicking convenience wrapper around [`ConvLayer::try_convert`]
    /// for experiment code that converts between known-good algorithms.
    ///
    /// # Panics
    ///
    /// Panics when the conversion is invalid (e.g. a strided direct conv
    /// to Winograd).
    pub fn convert(&mut self, algo: ConvAlgo) {
        self.try_convert(algo)
            .unwrap_or_else(|e| panic!("cannot convert layer to {algo}: {e}"));
    }
}

impl Layer for ConvLayer {
    fn try_forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Result<Var, WaError> {
        match self {
            ConvLayer::Direct(c) => c.try_forward(tape, x, train),
            ConvLayer::Winograd(w) => w.try_forward(tape, x, train),
        }
    }

    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var {
        match self {
            ConvLayer::Direct(c) => c.forward(tape, x, train),
            ConvLayer::Winograd(w) => w.forward(tape, x, train),
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        match self {
            ConvLayer::Direct(c) => c.visit_params(f),
            ConvLayer::Winograd(w) => w.visit_params(f),
        }
    }

    fn reset_statistics(&mut self) {
        match self {
            ConvLayer::Direct(c) => c.reset_statistics(),
            ConvLayer::Winograd(w) => w.reset_statistics(),
        }
    }

    fn visit_quant_state(&mut self, f: &mut dyn FnMut(&str, wa_nn::QuantStateMut<'_>)) {
        match self {
            ConvLayer::Direct(c) => c.visit_quant_state(f),
            ConvLayer::Winograd(w) => w.visit_quant_state(f),
        }
    }
}

impl Infer for ConvLayer {
    fn infer(&self, tape: &mut Tape, x: Var) -> Result<Var, WaError> {
        match self {
            ConvLayer::Direct(c) => c.infer(tape, x),
            ConvLayer::Winograd(w) => w.infer(tape, x),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_tensor::Tensor;

    fn mk(
        in_ch: usize,
        out_ch: usize,
        stride: usize,
        algo: ConvAlgo,
        rng: &mut SeededRng,
    ) -> ConvLayer {
        let spec = ConvSpec::builder()
            .name("c")
            .in_channels(in_ch)
            .out_channels(out_ch)
            .stride(stride)
            .algo(algo)
            .build()
            .unwrap();
        ConvLayer::from_spec(&spec, rng).unwrap()
    }

    #[test]
    fn algo_display_matches_paper_nomenclature() {
        assert_eq!(ConvAlgo::Im2row.to_string(), "im2row");
        assert_eq!(ConvAlgo::Winograd { m: 4 }.to_string(), "F4");
        assert_eq!(ConvAlgo::WinogradFlex { m: 6 }.to_string(), "F6-flex");
    }

    #[test]
    fn convert_direct_to_winograd_keeps_weights_and_output() {
        let mut rng = SeededRng::new(1);
        let mut layer = mk(2, 3, 1, ConvAlgo::Im2row, &mut rng);
        let x = rng.uniform_tensor(&[1, 2, 8, 8], -1.0, 1.0);
        let before = {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let y = layer.forward(&mut tape, xv, false);
            tape.value(y).clone()
        };
        layer.try_convert(ConvAlgo::Winograd { m: 2 }).unwrap();
        assert_eq!(layer.algo(), ConvAlgo::Winograd { m: 2 });
        let after = {
            let mut tape = Tape::new();
            let xv = tape.leaf(x);
            let y = layer.forward(&mut tape, xv, false);
            tape.value(y).clone()
        };
        // FP32 F2 post-training swap is safe (Table 1 column 1)
        assert_eq!(before.shape(), after.shape());
        for (a, b) in before.data().iter().zip(after.data()) {
            assert!((a - b).abs() < 1e-3, "{} vs {}", a, b);
        }
    }

    #[test]
    fn convert_roundtrip_restores_algo() {
        let mut rng = SeededRng::new(2);
        let mut layer = mk(1, 1, 1, ConvAlgo::Im2row, &mut rng);
        let w0 = match &layer {
            ConvLayer::Direct(c) => c.weight.value.clone(),
            _ => unreachable!(),
        };
        layer.convert(ConvAlgo::WinogradFlex { m: 4 });
        layer.convert(ConvAlgo::Im2row);
        match &layer {
            ConvLayer::Direct(c) => assert_eq!(c.weight.value, w0),
            _ => panic!("expected direct layer"),
        }
    }

    #[test]
    fn convert_same_algo_is_noop() {
        let mut rng = SeededRng::new(3);
        let mut layer = mk(1, 2, 1, ConvAlgo::Winograd { m: 2 }, &mut rng);
        let w0 = match &layer {
            ConvLayer::Winograd(w) => w.weight.value.clone(),
            _ => unreachable!(),
        };
        layer.convert(ConvAlgo::Winograd { m: 2 });
        match &layer {
            ConvLayer::Winograd(w) => assert_eq!(w.weight.value, w0),
            _ => panic!("expected winograd layer"),
        }
    }

    #[test]
    fn strided_conversion_errors_and_leaves_layer_intact() {
        let mut rng = SeededRng::new(4);
        let mut layer = mk(1, 1, 2, ConvAlgo::Im2row, &mut rng);
        let err = layer.try_convert(ConvAlgo::Winograd { m: 2 }).unwrap_err();
        assert!(matches!(err, WaError::UnsupportedAlgo { .. }), "{err}");
        assert_eq!(
            layer.algo(),
            ConvAlgo::Im2row,
            "failed convert must not mutate"
        );
        assert_eq!(layer.stride(), 2);
    }

    #[test]
    #[should_panic(expected = "cannot convert layer")]
    fn strided_conversion_panics_via_wrapper() {
        let mut rng = SeededRng::new(4);
        let mut layer = mk(1, 1, 2, ConvAlgo::Im2row, &mut rng);
        layer.convert(ConvAlgo::Winograd { m: 2 });
    }

    #[test]
    fn unsupported_tile_conversion_errors() {
        let mut rng = SeededRng::new(6);
        let mut layer = mk(1, 1, 1, ConvAlgo::Im2row, &mut rng);
        let err = layer.try_convert(ConvAlgo::Winograd { m: 3 }).unwrap_err();
        assert!(matches!(err, WaError::UnsupportedAlgo { .. }), "{err}");
    }

    #[test]
    fn spec_roundtrips_through_surgery() {
        let mut rng = SeededRng::new(7);
        let mut layer = mk(3, 5, 1, ConvAlgo::Im2row, &mut rng);
        let s0 = layer.spec();
        assert_eq!((s0.in_channels, s0.out_channels, s0.kernel), (3, 5, 3));
        layer.try_convert(ConvAlgo::WinogradFlex { m: 4 }).unwrap();
        let s1 = layer.spec();
        assert_eq!(s1.algo, ConvAlgo::WinogradFlex { m: 4 });
        assert_eq!(s1.name, s0.name);
        // the read-back spec rebuilds an equivalent layer
        let rebuilt = ConvLayer::from_spec(&s1, &mut rng).unwrap();
        assert_eq!(rebuilt.algo(), layer.algo());
        assert_eq!(rebuilt.in_channels(), layer.in_channels());
    }

    #[test]
    fn set_quant_applies() {
        let mut rng = SeededRng::new(5);
        let mut layer = mk(1, 1, 1, ConvAlgo::Im2row, &mut rng);
        let q = QuantConfig::uniform(wa_quant::BitWidth::INT8);
        layer.set_quant(q);
        assert_eq!(layer.quant(), q);
        let _ = Tensor::zeros(&[1]);
    }
}
