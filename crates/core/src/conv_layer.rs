//! Algorithm-switchable convolution and post-training surgery.

use serde::{Deserialize, Serialize};
use wa_nn::{Conv2d, Layer, Param, QuantConfig, Tape, Var};
use wa_tensor::SeededRng;

use crate::winograd_layer::WinogradAwareConv2d;

/// The convolution algorithm implementing a 3×3 (or 5×5) layer — the
/// choice wiNAS searches over (paper Figure 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConvAlgo {
    /// Patch-lowering + GEMM (lossless baseline).
    Im2row,
    /// Winograd-aware `F(m×m, r×r)` with static Cook-Toom transforms.
    Winograd {
        /// Output tile size `m` (2, 4 or 6 in the paper).
        m: usize,
    },
    /// Winograd-aware with learnable transforms (the paper's `-flex`).
    WinogradFlex {
        /// Output tile size `m`.
        m: usize,
    },
}

impl ConvAlgo {
    /// Output tile size for Winograd variants, `None` for im2row.
    pub fn tile_m(&self) -> Option<usize> {
        match self {
            ConvAlgo::Im2row => None,
            ConvAlgo::Winograd { m } | ConvAlgo::WinogradFlex { m } => Some(*m),
        }
    }

    /// Whether transforms are learnable.
    pub fn is_flex(&self) -> bool {
        matches!(self, ConvAlgo::WinogradFlex { .. })
    }
}

impl std::fmt::Display for ConvAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvAlgo::Im2row => write!(f, "im2row"),
            ConvAlgo::Winograd { m } => write!(f, "F{}", m),
            ConvAlgo::WinogradFlex { m } => write!(f, "F{}-flex", m),
        }
    }
}

/// A convolution layer that can be implemented by any [`ConvAlgo`] and
/// re-implemented in place (surgery) without losing its trained weights.
///
/// This is the unit the paper's experiments manipulate: Table 1 swaps
/// trained `im2row` layers to Winograd post-hoc; Figure 6 adapts them with
/// a few retraining epochs; wiNAS picks a per-layer algorithm.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // two layer kinds by design; boxing
                                     // would complicate every forward call
pub enum ConvLayer {
    /// Lowering-based convolution.
    Direct(Conv2d),
    /// Winograd-aware convolution.
    Winograd(WinogradAwareConv2d),
}

impl ConvLayer {
    /// Creates the layer with the given algorithm.
    ///
    /// # Panics
    ///
    /// Panics if dims are zero or a Winograd algorithm is requested with
    /// `stride != 1`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        algo: ConvAlgo,
        quant: QuantConfig,
        rng: &mut SeededRng,
    ) -> ConvLayer {
        match algo {
            ConvAlgo::Im2row => ConvLayer::Direct(Conv2d::new(
                name, in_ch, out_ch, kernel, stride, pad, false, quant, rng,
            )),
            ConvAlgo::Winograd { m } | ConvAlgo::WinogradFlex { m } => {
                assert_eq!(stride, 1, "Winograd layers require stride 1 (paper §5.1)");
                ConvLayer::Winograd(WinogradAwareConv2d::new(
                    name,
                    in_ch,
                    out_ch,
                    m,
                    kernel,
                    pad,
                    algo.is_flex(),
                    quant,
                    rng,
                ))
            }
        }
    }

    /// The algorithm currently implementing this layer.
    pub fn algo(&self) -> ConvAlgo {
        match self {
            ConvLayer::Direct(_) => ConvAlgo::Im2row,
            ConvLayer::Winograd(w) => {
                if w.is_flex() {
                    ConvAlgo::WinogradFlex { m: w.m() }
                } else {
                    ConvAlgo::Winograd { m: w.m() }
                }
            }
        }
    }

    /// Output channels.
    pub fn out_channels(&self) -> usize {
        match self {
            ConvLayer::Direct(c) => c.out_channels(),
            ConvLayer::Winograd(w) => w.out_channels(),
        }
    }

    /// Input channels.
    pub fn in_channels(&self) -> usize {
        match self {
            ConvLayer::Direct(c) => c.in_channels(),
            ConvLayer::Winograd(w) => w.in_channels(),
        }
    }

    /// Current quantization config.
    pub fn quant(&self) -> QuantConfig {
        match self {
            ConvLayer::Direct(c) => c.quant,
            ConvLayer::Winograd(w) => w.quant,
        }
    }

    /// Sets the quantization config (used by wiNAS-Q to assign per-layer
    /// precision).
    pub fn set_quant(&mut self, q: QuantConfig) {
        match self {
            ConvLayer::Direct(c) => c.quant = q,
            ConvLayer::Winograd(w) => w.quant = q,
        }
    }

    /// **Surgery**: re-implements the layer with `algo`, carrying the
    /// trained weights (and bias) over and resetting observers. Converting
    /// to the same algorithm is a no-op.
    ///
    /// This is the paper's Table 1 experiment (swap after training) and
    /// the starting point of Figure 6 adaptation.
    ///
    /// # Panics
    ///
    /// Panics when converting a strided direct conv to Winograd.
    pub fn convert(&mut self, algo: ConvAlgo) {
        if self.algo() == algo {
            return;
        }
        let quant = self.quant();
        // Temporarily replace self with a cheap placeholder to take
        // ownership of the parameters.
        let old = std::mem::replace(
            self,
            ConvLayer::Direct(Conv2d::new(
                "placeholder",
                1,
                1,
                1,
                1,
                0,
                false,
                QuantConfig::FP32,
                &mut SeededRng::new(0),
            )),
        );
        let (weight, bias, pad, stride, name) = match old {
            ConvLayer::Direct(c) => {
                let name = c.weight.name.trim_end_matches(".weight").to_string();
                (c.weight, c.bias, c.pad, c.stride, name)
            }
            ConvLayer::Winograd(w) => {
                let name = w.weight.name.trim_end_matches(".weight").to_string();
                let pad = w.pad_size();
                (w.weight, w.bias, pad, 1, name)
            }
        };
        *self = match algo {
            ConvAlgo::Im2row => {
                let kernel = weight.value.dim(2);
                let mut conv = Conv2d::new(
                    &name,
                    weight.value.dim(1),
                    weight.value.dim(0),
                    kernel,
                    stride,
                    pad,
                    bias.is_some(),
                    quant,
                    &mut SeededRng::new(0),
                );
                conv.weight = weight;
                conv.bias = bias;
                ConvLayer::Direct(conv)
            }
            ConvAlgo::Winograd { m } | ConvAlgo::WinogradFlex { m } => {
                assert_eq!(stride, 1, "cannot convert a strided conv to Winograd");
                let r = weight.value.dim(2);
                ConvLayer::Winograd(WinogradAwareConv2d::with_weight(
                    &name,
                    weight,
                    bias,
                    m,
                    r,
                    pad,
                    algo.is_flex(),
                    quant,
                ))
            }
        };
    }
}

impl Layer for ConvLayer {
    fn forward(&mut self, tape: &mut Tape, x: Var, train: bool) -> Var {
        match self {
            ConvLayer::Direct(c) => c.forward(tape, x, train),
            ConvLayer::Winograd(w) => w.forward(tape, x, train),
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        match self {
            ConvLayer::Direct(c) => c.visit_params(f),
            ConvLayer::Winograd(w) => w.visit_params(f),
        }
    }

    fn reset_statistics(&mut self) {
        match self {
            ConvLayer::Direct(c) => c.reset_statistics(),
            ConvLayer::Winograd(w) => w.reset_statistics(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_tensor::Tensor;

    #[test]
    fn algo_display_matches_paper_nomenclature() {
        assert_eq!(ConvAlgo::Im2row.to_string(), "im2row");
        assert_eq!(ConvAlgo::Winograd { m: 4 }.to_string(), "F4");
        assert_eq!(ConvAlgo::WinogradFlex { m: 6 }.to_string(), "F6-flex");
    }

    #[test]
    fn convert_direct_to_winograd_keeps_weights_and_output() {
        let mut rng = SeededRng::new(1);
        let mut layer = ConvLayer::new(
            "c",
            2,
            3,
            3,
            1,
            1,
            ConvAlgo::Im2row,
            QuantConfig::FP32,
            &mut rng,
        );
        let x = rng.uniform_tensor(&[1, 2, 8, 8], -1.0, 1.0);
        let before = {
            let mut tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let y = layer.forward(&mut tape, xv, false);
            tape.value(y).clone()
        };
        layer.convert(ConvAlgo::Winograd { m: 2 });
        assert_eq!(layer.algo(), ConvAlgo::Winograd { m: 2 });
        let after = {
            let mut tape = Tape::new();
            let xv = tape.leaf(x);
            let y = layer.forward(&mut tape, xv, false);
            tape.value(y).clone()
        };
        // FP32 F2 post-training swap is safe (Table 1 column 1)
        assert_eq!(before.shape(), after.shape());
        for (a, b) in before.data().iter().zip(after.data()) {
            assert!((a - b).abs() < 1e-3, "{} vs {}", a, b);
        }
    }

    #[test]
    fn convert_roundtrip_restores_algo() {
        let mut rng = SeededRng::new(2);
        let mut layer = ConvLayer::new(
            "c",
            1,
            1,
            3,
            1,
            1,
            ConvAlgo::Im2row,
            QuantConfig::FP32,
            &mut rng,
        );
        let w0 = match &layer {
            ConvLayer::Direct(c) => c.weight.value.clone(),
            _ => unreachable!(),
        };
        layer.convert(ConvAlgo::WinogradFlex { m: 4 });
        layer.convert(ConvAlgo::Im2row);
        match &layer {
            ConvLayer::Direct(c) => assert_eq!(c.weight.value, w0),
            _ => panic!("expected direct layer"),
        }
    }

    #[test]
    fn convert_same_algo_is_noop() {
        let mut rng = SeededRng::new(3);
        let mut layer = ConvLayer::new(
            "c",
            1,
            2,
            3,
            1,
            1,
            ConvAlgo::Winograd { m: 2 },
            QuantConfig::FP32,
            &mut rng,
        );
        let w0 = match &layer {
            ConvLayer::Winograd(w) => w.weight.value.clone(),
            _ => unreachable!(),
        };
        layer.convert(ConvAlgo::Winograd { m: 2 });
        match &layer {
            ConvLayer::Winograd(w) => assert_eq!(w.weight.value, w0),
            _ => panic!("expected winograd layer"),
        }
    }

    #[test]
    #[should_panic(expected = "cannot convert a strided conv")]
    fn strided_conversion_panics() {
        let mut rng = SeededRng::new(4);
        let mut layer = ConvLayer::new(
            "c",
            1,
            1,
            3,
            2,
            1,
            ConvAlgo::Im2row,
            QuantConfig::FP32,
            &mut rng,
        );
        layer.convert(ConvAlgo::Winograd { m: 2 });
    }

    #[test]
    fn set_quant_applies() {
        let mut rng = SeededRng::new(5);
        let mut layer = ConvLayer::new(
            "c",
            1,
            1,
            3,
            1,
            1,
            ConvAlgo::Im2row,
            QuantConfig::FP32,
            &mut rng,
        );
        let q = QuantConfig::uniform(wa_quant::BitWidth::INT8);
        layer.set_quant(q);
        assert_eq!(layer.quant(), q);
        let _ = Tensor::zeros(&[1]);
    }
}
