//! The training pipeline shared by every experiment.

use wa_nn::{accuracy, Adam, CosineAnnealing, Layer, Optimizer, RunningMean, Sgd, Tape};
use wa_tensor::Tensor;

/// A mini-batch: NCHW images plus integer class labels.
pub type LabeledBatch = (Tensor, Vec<usize>);

/// Which optimizer drives the model weights.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum OptimKind {
    /// Adam — the paper's choice for Winograd-aware training (§5.1).
    Adam {
        /// Learning rate.
        lr: f32,
    },
    /// SGD + Nesterov momentum — the wiNAS weight stage (§5.2).
    SgdNesterov {
        /// Learning rate.
        lr: f32,
        /// Momentum μ.
        momentum: f32,
    },
}

/// Training hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Optimizer for model weights.
    pub optim: OptimKind,
    /// L2 penalty λ₀ on the weights (Eq. 2).
    pub weight_decay: f32,
    /// Cosine-anneal the learning rate to this floor (None = constant LR).
    pub cosine_to: Option<f32>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            optim: OptimKind::Adam { lr: 1e-3 },
            weight_decay: 1e-4,
            cosine_to: Some(0.0),
        }
    }
}

/// Loss/accuracy for one epoch.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f64,
    /// Training accuracy.
    pub train_acc: f64,
    /// Validation loss.
    pub val_loss: f64,
    /// Validation accuracy.
    pub val_acc: f64,
}

/// Full training history.
#[derive(Clone, Debug, Default)]
pub struct History {
    /// Per-epoch statistics.
    pub epochs: Vec<EpochStats>,
}

impl History {
    /// Best validation accuracy across epochs (0.0 if empty).
    pub fn best_val_acc(&self) -> f64 {
        self.epochs.iter().map(|e| e.val_acc).fold(0.0, f64::max)
    }

    /// Final validation accuracy (0.0 if empty).
    pub fn final_val_acc(&self) -> f64 {
        self.epochs.last().map(|e| e.val_acc).unwrap_or(0.0)
    }
}

fn make_optimizer(kind: OptimKind, weight_decay: f32) -> Box<dyn Optimizer> {
    match kind {
        OptimKind::Adam { lr } => {
            let mut a = Adam::new(lr);
            a.weight_decay = weight_decay;
            Box::new(a)
        }
        OptimKind::SgdNesterov { lr, momentum } => {
            Box::new(Sgd::new(lr, momentum, true, weight_decay))
        }
    }
}

/// Runs one optimization step on a batch, returning `(loss, accuracy)`.
pub fn train_step(
    model: &mut dyn Layer,
    opt: &mut dyn Optimizer,
    images: &Tensor,
    labels: &[usize],
) -> (f64, f64) {
    let mut tape = Tape::new();
    let x = tape.leaf(images.clone());
    let logits = model.forward(&mut tape, x, true);
    let loss = tape.cross_entropy(logits, labels);
    let loss_val = tape.value(loss).data()[0] as f64;
    let acc = accuracy(tape.value(logits), labels);
    let grads = tape.backward(loss);
    model.visit_params(&mut |p| {
        p.absorb(&grads);
        opt.update(p);
    });
    (loss_val, acc)
}

/// Evaluates the model over batches (no parameter or observer updates),
/// returning `(mean loss, accuracy)`.
pub fn evaluate(model: &mut dyn Layer, batches: &[LabeledBatch]) -> (f64, f64) {
    let mut loss_m = RunningMean::new();
    let mut acc_m = RunningMean::new();
    for (images, labels) in batches {
        let mut tape = Tape::new();
        let x = tape.leaf(images.clone());
        let logits = model.forward(&mut tape, x, false);
        let loss = tape.cross_entropy(logits, labels);
        let w = labels.len() as f64;
        loss_m.add(tape.value(loss).data()[0] as f64, w);
        acc_m.add(accuracy(tape.value(logits), labels), w);
    }
    (loss_m.mean(), acc_m.mean())
}

/// Runs forward passes in training mode **without optimizer updates** so
/// range observers (and batch-norm running statistics) warm up — the
/// relaxation the paper applies before evaluating post-training Winograd
/// swaps ("we performed a warmup of all the moving averages involved in
/// Eq. 1 using the training set but without modifying the weights",
/// Table 1 caption).
pub fn warm_up(model: &mut dyn Layer, batches: &[LabeledBatch]) {
    // two passes: the first re-centres batch-norm running statistics, the
    // second settles the quantization ranges measured on top of them
    for _ in 0..2 {
        for (images, labels) in batches {
            let mut tape = Tape::new();
            let x = tape.leaf(images.clone());
            let logits = model.forward(&mut tape, x, true);
            // touch logits so the forward pass is not optimized away
            debug_assert_eq!(tape.value(logits).dim(0), labels.len());
        }
    }
}

/// Trains `model` on pre-batched data, evaluating after every epoch.
///
/// # Example
///
/// ```
/// use wa_core::{fit, TrainConfig};
/// use wa_nn::{Linear, LinearSpec};
/// use wa_tensor::{SeededRng, Tensor};
///
/// let mut rng = SeededRng::new(0);
/// let spec = LinearSpec::builder("m").in_features(4).out_features(2).build().unwrap();
/// let mut model = Linear::from_spec(&spec, &mut rng).unwrap();
/// // two separable batches
/// let mk = |c: usize| {
///     let img = Tensor::from_fn(&[4, 4], |i| if i % 4 == c { 1.0 } else { 0.0 });
///     (img, vec![c; 4])
/// };
/// let train = vec![mk(0), mk(1)];
/// let cfg = TrainConfig { epochs: 80, optim: wa_core::OptimKind::Adam { lr: 0.05 }, ..TrainConfig::default() };
/// let hist = fit(&mut model, &train, &train, &cfg);
/// assert!(hist.best_val_acc() > 0.9);
/// ```
pub fn fit(
    model: &mut dyn Layer,
    train_batches: &[LabeledBatch],
    val_batches: &[LabeledBatch],
    config: &TrainConfig,
) -> History {
    let mut opt = make_optimizer(config.optim, config.weight_decay);
    let base_lr = opt.lr();
    let schedule = config
        .cosine_to
        .map(|floor| CosineAnnealing::new(base_lr, floor, config.epochs.max(1)));
    let mut history = History::default();
    for epoch in 0..config.epochs {
        if let Some(s) = &schedule {
            opt.set_lr(s.lr_at(epoch));
        }
        let mut loss_m = RunningMean::new();
        let mut acc_m = RunningMean::new();
        for (images, labels) in train_batches {
            let (l, a) = train_step(model, opt.as_mut(), images, labels);
            let w = labels.len() as f64;
            loss_m.add(l, w);
            acc_m.add(a, w);
        }
        let (val_loss, val_acc) = evaluate(model, val_batches);
        history.epochs.push(EpochStats {
            epoch,
            train_loss: loss_m.mean(),
            train_acc: acc_m.mean(),
            val_loss,
            val_acc,
        });
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_nn::{Linear, LinearSpec};
    use wa_tensor::SeededRng;

    fn linear(rng: &mut SeededRng) -> Linear {
        let spec = LinearSpec::builder("m")
            .in_features(8)
            .out_features(2)
            .build()
            .unwrap();
        Linear::from_spec(&spec, rng).unwrap()
    }

    /// Tiny two-class problem: class = which half of the vector is hot.
    fn toy_batches(rng: &mut SeededRng, batches: usize, bs: usize) -> Vec<LabeledBatch> {
        (0..batches)
            .map(|_| {
                let mut labels = Vec::with_capacity(bs);
                let img = Tensor::from_fn(&[bs, 8], |i| {
                    let row = i / 8;
                    let col = i % 8;
                    if row >= labels.len() {
                        labels.push(if rng.chance(0.5) { 1usize } else { 0 });
                    }
                    let cls = labels[row];
                    let hot = (col / 4) == cls;
                    if hot {
                        rng.uniform(0.6, 1.0)
                    } else {
                        rng.uniform(0.0, 0.2)
                    }
                });
                (img, labels)
            })
            .collect()
    }

    #[test]
    fn fit_learns_toy_problem() {
        let mut rng = SeededRng::new(1);
        let train = toy_batches(&mut rng, 8, 16);
        let val = toy_batches(&mut rng, 2, 16);
        let mut model = linear(&mut rng);
        let cfg = TrainConfig {
            epochs: 30,
            optim: OptimKind::Adam { lr: 5e-3 },
            ..TrainConfig::default()
        };
        let hist = fit(&mut model, &train, &val, &cfg);
        assert_eq!(hist.epochs.len(), 30);
        assert!(
            hist.best_val_acc() > 0.95,
            "val acc {}",
            hist.best_val_acc()
        );
        assert!(
            hist.epochs.last().unwrap().train_loss < hist.epochs[0].train_loss,
            "loss must decrease"
        );
    }

    #[test]
    fn evaluate_is_side_effect_free() {
        let mut rng = SeededRng::new(2);
        let data = toy_batches(&mut rng, 2, 8);
        let mut model = linear(&mut rng);
        let w0 = model.weight.value.clone();
        let _ = evaluate(&mut model, &data);
        assert_eq!(model.weight.value, w0);
    }

    #[test]
    fn sgd_nesterov_config_trains() {
        let mut rng = SeededRng::new(3);
        let train = toy_batches(&mut rng, 8, 16);
        let mut model = linear(&mut rng);
        let cfg = TrainConfig {
            epochs: 20,
            optim: OptimKind::SgdNesterov {
                lr: 0.1,
                momentum: 0.9,
            },
            weight_decay: 0.0,
            cosine_to: Some(1e-4),
        };
        let hist = fit(&mut model, &train, &train, &cfg);
        assert!(hist.best_val_acc() > 0.9, "val acc {}", hist.best_val_acc());
    }
}
