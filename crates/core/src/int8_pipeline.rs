//! Fused eager kernels for the [`Execution::Int8`] Winograd inference
//! path.
//!
//! The op-by-op pipeline materializes ~10 full-size intermediates per
//! convolution (pad, gather, two matmuls + a fake-quant + two tile
//! transposes per half, plus the quantize/permute/pack chain feeding the
//! integer GEMM). At inference time none of those intermediates is
//! needed: each `n×n` tile's journey from gathered input to packed i8
//! GEMM operand — and from i32 accumulator to assembled output pixel —
//! is a local computation that fits in registers. These kernels walk the
//! tiles once, apply the transform matrices as plain ascending-`k` dot
//! products, snap at exactly the sites the reference snaps, and write
//! straight into the final layout (the pair-interleaved GEMM panels on
//! the way in, the NCHW output on the way out).
//!
//! **Bit-exactness.** The f32 GEMM's micro-kernel accumulates `a·b`
//! products in ascending `k` order, making `matmul_nt` bit-identical to
//! a naive triple loop; the dot products here use the same order, the
//! snapping uses the same [`round_clamp_i32`] arithmetic as
//! `fake_quant_scale`, and all data movement (implicit zero padding,
//! tile transposes folded into index order, output cropping) is exact by
//! construction. The unit tests below pin both kernels `==`-equal to the
//! tape-op sequences they replace, so the int8 parity contract is
//! unchanged.
//!
//! [`Execution::Int8`]: wa_quant::Execution::Int8
//! [`round_clamp_i32`]: wa_quant::round_clamp_i32

use wa_quant::{round_clamp_i32, Requantizer};
use wa_tensor::{PackedBI8, Tensor};
use wa_winograd::TileGeometry;

/// Largest supported tile edge (`n = m + r − 1`): F6 with r=3 gives
/// `n = 8`. Layers beyond this take the op-by-op fallback.
pub(crate) const MAX_TILE: usize = 8;

/// Whether the fused kernels cover this `(n, m)` tile shape. The hot
/// loops are monomorphized per shape (const tile edges let the compiler
/// unroll the 6-element dot products and hoist every bounds check, which
/// is worth ~3× over the generic loop); the shapes here are exactly the
/// `F2/F4/F6 × r=3` configurations the paper evaluates. Anything else
/// takes the op-by-op fallback.
pub(crate) fn supports_tile(n: usize, m: usize) -> bool {
    matches!((n, m), (4, 2) | (6, 4) | (8, 6))
}

/// Quantization parameters of the fused input half: the per-layer
/// `Q(Bᵀ·d)` snap and the per-tap `Q(Bᵀ·d·B)` grids.
pub(crate) struct FrontQuant<'a> {
    /// Scale of the `Bᵀ·d` site.
    pub s_bd: f32,
    /// `qmax` of the activation bit-width at the `Bᵀ·d` site.
    pub qmax_bd: i32,
    /// Per-tap scales of the `Bᵀ·d·B` site (`n²` entries).
    pub v_scales: &'a [f32],
    /// Per-tap `qmax` values of the `Bᵀ·d·B` site (`n²` entries).
    pub v_qmaxes: &'a [i32],
}

/// Fused input half: gather each `n×n` tile (implicit zero padding),
/// apply `Bᵀ·d·B` with a `Q(Bᵀ·d)` snap between the two one-sided
/// products, quantize each tap onto its i8 grid, and write the value
/// straight into its packed-GEMM slot of `pb` (logical layout
/// `[n², C, B·T]`: batch item = tap, row = input channel, column =
/// global tile index).
///
/// Replaces `pad_tiles → gather_tiles → matmul_nt(bt) → fake_quant →
/// tile_transpose → matmul_nt(bt) → tile_transpose → quantize_i8_taps →
/// permute → pack`, bit-identically.
///
/// # Panics
///
/// Panics if shapes disagree with the geometry or `n > MAX_TILE`.
pub(crate) fn fused_input_pack(
    xq: &Tensor,
    bt: &Tensor,
    geom: &TileGeometry,
    fq: &FrontQuant,
    pb: &mut PackedBI8,
) {
    match geom.tile() {
        4 => front_impl::<4>(xq, bt, geom, fq, pb),
        6 => front_impl::<6>(xq, bt, geom, fq, pb),
        8 => front_impl::<8>(xq, bt, geom, fq, pb),
        n => panic!("fused input transform does not support tile edge {n}"),
    }
}

fn front_impl<const N: usize>(
    xq: &Tensor,
    bt: &Tensor,
    geom: &TileGeometry,
    fq: &FrontQuant,
    pb: &mut PackedBI8,
) {
    assert_eq!(bt.shape(), &[N, N], "Bᵀ shape mismatch");
    let (batch, c_in) = (xq.dim(0), xq.dim(1));
    let (h, w) = (geom.in_h, geom.in_w);
    assert_eq!(
        (xq.dim(2), xq.dim(3)),
        (h, w),
        "input does not match geometry"
    );
    assert_eq!(fq.v_scales.len(), N * N, "per-tap scale count mismatch");
    assert_eq!(fq.v_qmaxes.len(), N * N, "per-tap qmax count mismatch");
    assert_eq!(pb.batch(), N * N, "packed operand tap count mismatch");
    assert_eq!(pb.k(), c_in, "packed operand channel count mismatch");
    assert_eq!(
        pb.n(),
        batch * geom.tiles(),
        "packed operand tile count mismatch"
    );

    // fixed-size local copies: every index below is provably in bounds,
    // so the unrolled tile loops compile check-free
    let mut btl = [0f32; MAX_TILE * MAX_TILE];
    btl[..N * N].copy_from_slice(bt.data());
    // B itself (Bᵀ transposed): lets the first product broadcast one `d`
    // element against a contiguous row, vectorizing over `j`
    let mut btt = [0f32; MAX_TILE * MAX_TILE];
    for j in 0..N {
        for q in 0..N {
            btt[q * N + j] = btl[j * N + q];
        }
    }
    let mut vs = [1f32; MAX_TILE * MAX_TILE];
    vs[..N * N].copy_from_slice(fq.v_scales);
    let mut vqm = [0i32; MAX_TILE * MAX_TILE];
    vqm[..N * N].copy_from_slice(fq.v_qmaxes);

    let t_per = geom.tiles();
    let src = xq.data();
    let mut d = [0f32; MAX_TILE * MAX_TILE];
    let mut u = [0f32; MAX_TILE * MAX_TILE];
    let mut v = [0f32; MAX_TILE * MAX_TILE];
    let mut qv = [0i16; MAX_TILE * MAX_TILE];
    for img in 0..batch {
        for ty in 0..geom.tiles_y {
            let y0 = (ty * geom.m) as isize - geom.pad as isize;
            for tx in 0..geom.tiles_x {
                let x0 = (tx * geom.m) as isize - geom.pad as isize;
                let tile_g = img * t_per + ty * geom.tiles_x + tx;
                for c in 0..c_in {
                    // gather d with implicit zero padding (≡ pad_tiles +
                    // gather_tiles, which read zeros from the pad halo);
                    // the in-bounds span is copied wholesale, branch-free
                    let plane = &src[(img * c_in + c) * h * w..][..h * w];
                    let lo = (-x0).clamp(0, N as isize) as usize;
                    let hi = (w as isize - x0).clamp(0, N as isize) as usize;
                    for dy in 0..N {
                        let yy = y0 + dy as isize;
                        let row = &mut d[dy * N..dy * N + N];
                        if yy < 0 || yy >= h as isize || lo >= hi {
                            row.fill(0.0);
                            continue;
                        }
                        row[..lo].fill(0.0);
                        row[hi..].fill(0.0);
                        let srow = yy as usize * w + (x0 + lo as isize) as usize;
                        row[lo..hi].copy_from_slice(&plane[srow..srow + (hi - lo)]);
                    }
                    // u = d·Bᵀᵀ then the flat Q_bd snap (≡ matmul_nt +
                    // fake_quant). Broadcast-accumulate form: each
                    // u[p, j] still sums in ascending `q`, bit-identical
                    // to the GEMM micro-kernel, but the inner loop runs
                    // over a contiguous row and vectorizes.
                    u[..N * N].fill(0.0);
                    for p in 0..N {
                        let urow = &mut u[p * N..p * N + N];
                        for q in 0..N {
                            let dv = d[p * N + q];
                            let brow = &btt[q * N..q * N + N];
                            for (cell, &bv) in urow.iter_mut().zip(brow) {
                                *cell += dv * bv;
                            }
                        }
                    }
                    for cell in u[..N * N].iter_mut() {
                        *cell = round_clamp_i32(*cell / fq.s_bd, fq.qmax_bd) as f32 * fq.s_bd;
                    }
                    // tap (i, j): v[i, j] = Σ_p bt[i, p]·u[p, j], same
                    // broadcast form (u rows are contiguous in j), then
                    // quantized straight into the packed slots (≡
                    // tile_transpose + matmul_nt + tile_transpose +
                    // quantize + permute + pack)
                    v[..N * N].fill(0.0);
                    for i in 0..N {
                        let vrow = &mut v[i * N..i * N + N];
                        for p in 0..N {
                            let bv = btl[i * N + p];
                            let urow = &u[p * N..p * N + N];
                            for (cell, &uv) in vrow.iter_mut().zip(urow) {
                                *cell += bv * uv;
                            }
                        }
                    }
                    for (t, cell) in qv[..N * N].iter_mut().enumerate() {
                        *cell = round_clamp_i32(v[t] / vs[t], vqm[t]) as i16;
                    }
                    pb.write_taps(c, tile_g, &qv[..N * N]);
                }
            }
        }
    }
}

/// Quantization parameters of the fused output half: the per-tap
/// fixed-point requantizers onto the Hadamard grid, then the per-layer
/// `Q(Aᵀ·y)` and `Q(Aᵀ·y·A)` snaps.
pub(crate) struct BackQuant<'a> {
    /// Per-tap requantizers (`n²` entries, scale
    /// `s_filter·s_v / s_hadamard`).
    pub reqs: &'a [Requantizer],
    /// Hadamard-site scale.
    pub s_h: f32,
    /// `qmax` of the activation bit-width (Hadamard site).
    pub qmax_h: i32,
    /// Scale of the `Aᵀ·y` site.
    pub s_ay: f32,
    /// `qmax` at the `Aᵀ·y` site.
    pub qmax_ay: i32,
    /// Scale of the `Aᵀ·y·A` (output) site.
    pub s_aya: f32,
    /// `qmax` at the output site.
    pub qmax_aya: i32,
}

/// Fused output half: requantize each tile's `n²` i32 accumulators onto
/// the Hadamard grid, apply `Aᵀ·y·A` with a `Q(Aᵀ·y)` snap between the
/// one-sided products, add the bias, snap onto the output grid and write
/// the cropped `m×m` block into the NCHW output.
///
/// `acc` is `[n², K, B·T]` (tap-major, the integer GEMM's output).
/// Replaces `requantize → permute3 → matmul_nt(at) → fake_quant →
/// tile_transpose → matmul_nt(at) → tile_transpose → assemble_output →
/// add_bias_chan → fake_quant`, bit-identically.
///
/// # Panics
///
/// Panics if shapes disagree with the geometry or `n > MAX_TILE`.
pub(crate) fn fused_requant_output(
    acc: &[i32],
    at: &Tensor,
    geom: &TileGeometry,
    batch: usize,
    out_ch: usize,
    bias: Option<&[f32]>,
    bq: &BackQuant,
) -> Tensor {
    match (geom.tile(), geom.m) {
        (4, 2) => back_impl::<4, 2>(acc, at, geom, batch, out_ch, bias, bq),
        (6, 4) => back_impl::<6, 4>(acc, at, geom, batch, out_ch, bias, bq),
        (8, 6) => back_impl::<8, 6>(acc, at, geom, batch, out_ch, bias, bq),
        (n, m) => panic!("fused output transform does not support tile shape ({n}, {m})"),
    }
}

#[allow(clippy::too_many_arguments)] // internal monomorphization target of fused_requant_output
fn back_impl<const N: usize, const M: usize>(
    acc: &[i32],
    at: &Tensor,
    geom: &TileGeometry,
    batch: usize,
    out_ch: usize,
    bias: Option<&[f32]>,
    bq: &BackQuant,
) -> Tensor {
    assert_eq!(at.shape(), &[M, N], "Aᵀ shape mismatch");
    let t_per = geom.tiles();
    let total_tiles = batch * t_per;
    assert_eq!(
        acc.len(),
        N * N * out_ch * total_tiles,
        "accumulator length mismatch"
    );
    assert_eq!(bq.reqs.len(), N * N, "requantizer count mismatch");
    if let Some(b) = bias {
        assert_eq!(b.len(), out_ch, "bias length mismatch");
    }

    let mut atl = [0f32; MAX_TILE * MAX_TILE];
    atl[..M * N].copy_from_slice(at.data());
    // A itself (Aᵀ transposed, [N, M]): lets the first product broadcast
    // one `y` element against a contiguous row, vectorizing over `j`
    let mut att = [0f32; MAX_TILE * MAX_TILE];
    for j in 0..M {
        for q in 0..N {
            att[q * M + j] = atl[j * N + q];
        }
    }
    let mut reqs = [Requantizer::new(1.0); MAX_TILE * MAX_TILE];
    reqs[..N * N].copy_from_slice(bq.reqs);

    let (oh, ow) = (geom.out_h, geom.out_w);
    let mut out = Tensor::zeros(&[batch, out_ch, oh, ow]);
    let dst = out.data_mut();
    let mut y = [0f32; MAX_TILE * MAX_TILE];
    let mut u = [0f32; MAX_TILE * MAX_TILE];
    let mut f = [0f32; MAX_TILE * MAX_TILE];
    for img in 0..batch {
        for k in 0..out_ch {
            let b = bias.map_or(0.0, |b| b[k]);
            let d0 = (img * out_ch + k) * oh * ow;
            for ty in 0..geom.tiles_y {
                let y0 = ty * M;
                let ylim = M.min(oh.saturating_sub(y0));
                for tx in 0..geom.tiles_x {
                    let x0 = tx * M;
                    let xlim = M.min(ow.saturating_sub(x0));
                    let tile_g = img * t_per + ty * geom.tiles_x + tx;
                    // requantize the tile's accumulators onto the
                    // Hadamard grid (≡ the per-tap Requantizer pass)
                    for (t, cell) in y[..N * N].iter_mut().enumerate() {
                        let a = acc[(t * out_ch + k) * total_tiles + tile_g];
                        *cell = reqs[t].apply_clamped(a, bq.qmax_h) as f32 * bq.s_h;
                    }
                    // u = y·Aᵀᵀ then the flat Q_ay snap (≡ matmul_nt +
                    // fake_quant). Broadcast-accumulate form: ascending
                    // `q` per element, contiguous inner rows.
                    u[..N * M].fill(0.0);
                    for p in 0..N {
                        let urow = &mut u[p * M..p * M + M];
                        for q in 0..N {
                            let yv = y[p * N + q];
                            let arow = &att[q * M..q * M + M];
                            for (cell, &av) in urow.iter_mut().zip(arow) {
                                *cell += yv * av;
                            }
                        }
                    }
                    for cell in u[..N * M].iter_mut() {
                        *cell = round_clamp_i32(*cell / bq.s_ay, bq.qmax_ay) as f32 * bq.s_ay;
                    }
                    // f[dy, dx] = Σ_p at[dy, p]·u[p, dx], same form
                    f[..M * M].fill(0.0);
                    for dy in 0..M {
                        let frow = &mut f[dy * M..dy * M + M];
                        for p in 0..N {
                            let av = atl[dy * N + p];
                            let urow = &u[p * M..p * M + M];
                            for (cell, &uv) in frow.iter_mut().zip(urow) {
                                *cell += av * uv;
                            }
                        }
                    }
                    // out = Q_aya(f + bias), cropped to the live region
                    for dy in 0..ylim {
                        let drow = d0 + (y0 + dy) * ow + x0;
                        for dx in 0..xlim {
                            let v = f[dy * M + dx] + b;
                            dst[drow + dx] =
                                round_clamp_i32(v / bq.s_aya, bq.qmax_aya) as f32 * bq.s_aya;
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_nn::Tape;
    use wa_quant::{fake_quant_scale, quantize_i8_taps, BitWidth};
    use wa_tensor::SeededRng;
    use wa_winograd::WinogradTransform;

    /// The op-by-op tape sequence `fused_input_pack` replaces, yielding
    /// the packed operand it must reproduce bit-for-bit.
    fn reference_front(
        xq: &Tensor,
        bt: &Tensor,
        geom: &TileGeometry,
        fq: &FrontQuant,
        bits: &[BitWidth],
    ) -> Vec<i8> {
        let n = geom.tile();
        let (batch, c_in) = (xq.dim(0), xq.dim(1));
        let total_tiles = batch * geom.tiles();
        let mut tape = Tape::new();
        let x = tape.leaf(xq.clone());
        let btv = tape.leaf(bt.clone());
        let xp = tape.pad_tiles(x, *geom);
        let tiles = tape.gather_tiles(xp, *geom);
        let rows = total_tiles * c_in;
        let t1 = tape.reshape(tiles, &[rows * n, n]);
        let t2 = tape.matmul_nt(t1, btv);
        let t2q = tape.fake_quant(t2, BitWidth::INT8, fq.s_bd);
        let t3 = tape.reshape(t2q, &[rows, n * n]);
        let t4 = tape.tile_transpose(t3, n, n);
        let t5 = tape.reshape(t4, &[rows * n, n]);
        let t6 = tape.matmul_nt(t5, btv);
        let t7 = tape.reshape(t6, &[rows, n * n]);
        let v_pre = tape.tile_transpose(t7, n, n);
        let qv = quantize_i8_taps(tape.value(v_pre), bits, fq.v_scales);
        // permute [B·T·C, n²] → [n², C, B·T]
        let mut v_p = vec![0i8; qv.len()];
        for tile in 0..total_tiles {
            for c in 0..c_in {
                let src = &qv[(tile * c_in + c) * n * n..][..n * n];
                for (t, &q) in src.iter().enumerate() {
                    v_p[(t * c_in + c) * total_tiles + tile] = q;
                }
            }
        }
        v_p
    }

    /// The op-by-op tape sequence `fused_requant_output` replaces.
    #[allow(clippy::too_many_arguments)]
    fn reference_back(
        acc: &[i32],
        at: &Tensor,
        geom: &TileGeometry,
        batch: usize,
        out_ch: usize,
        bias: Option<&Tensor>,
        bq: &BackQuant,
    ) -> Tensor {
        let n = geom.tile();
        let m = geom.m;
        let taps = n * n;
        let total_tiles = batch * geom.tiles();
        let block = out_ch * total_tiles;
        let mut mm = Tensor::zeros(&[taps, out_ch, total_tiles]);
        let md = mm.data_mut();
        for (t, chunk) in md.chunks_mut(block).enumerate() {
            for (d, &a) in chunk.iter_mut().zip(&acc[t * block..]) {
                *d = bq.reqs[t].apply_clamped(a, bq.qmax_h) as f32 * bq.s_h;
            }
        }
        let mut tape = Tape::new();
        let mmv = tape.leaf(mm);
        let atv = tape.leaf(at.clone());
        let m3 = tape.permute3(mmv, [taps, out_ch, total_tiles], [2, 1, 0]);
        let orows = total_tiles * out_ch;
        let m_rows = tape.reshape(m3, &[orows, taps]);
        let o1 = tape.reshape(m_rows, &[orows * n, n]);
        let o2 = tape.matmul_nt(o1, atv);
        let o2q = tape.fake_quant(o2, BitWidth::INT8, bq.s_ay);
        let o3 = tape.reshape(o2q, &[orows, n * m]);
        let o4 = tape.tile_transpose(o3, n, m);
        let o5 = tape.reshape(o4, &[orows * m, n]);
        let o6 = tape.matmul_nt(o5, atv);
        let o7 = tape.reshape(o6, &[orows, m * m]);
        let y_rows = tape.tile_transpose(o7, m, m);
        let mut y = tape.assemble_output(y_rows, *geom, batch, out_ch);
        if let Some(b) = bias {
            let bv = tape.leaf(b.clone());
            y = tape.add_bias_chan(y, bv);
        }
        let yq = tape.fake_quant(y, BitWidth::INT8, bq.s_aya);
        tape.value(yq).clone()
    }

    fn geometry_cases() -> Vec<(usize, TileGeometry)> {
        // (m, geometry): exercises exact tiling, overrun cropping and
        // pad = 0 alongside the usual "same" padding
        vec![
            (4, TileGeometry::for_conv(8, 8, 4, 3, 1)),
            (4, TileGeometry::for_conv(7, 10, 4, 3, 1)),
            (2, TileGeometry::for_conv(6, 5, 2, 3, 1)),
            (2, TileGeometry::for_conv(5, 5, 2, 3, 0)),
        ]
    }

    #[test]
    fn fused_front_matches_op_by_op_pipeline_exactly() {
        let mut rng = SeededRng::new(97);
        for (m, geom) in geometry_cases() {
            let n = geom.tile();
            let taps = n * n;
            let (batch, c_in) = (2usize, 3usize);
            let tr = WinogradTransform::cook_toom(m, 3);
            let bt = tr.bt().clone();
            let xq = rng.uniform_tensor(&[batch, c_in, geom.in_h, geom.in_w], -1.0, 1.0);
            // snap the input like the real pipeline (values on a grid)
            let xq = fake_quant_scale(&xq, BitWidth::INT8, 1.0 / 127.0);
            let v_scales: Vec<f32> = (0..taps).map(|t| 0.01 + 0.003 * t as f32).collect();
            let v_qmaxes = vec![BitWidth::INT8.qmax(); taps];
            let bits = vec![BitWidth::INT8; taps];
            let fq = FrontQuant {
                s_bd: 0.021,
                qmax_bd: BitWidth::INT8.qmax(),
                v_scales: &v_scales,
                v_qmaxes: &v_qmaxes,
            };
            let total_tiles = batch * geom.tiles();
            let mut pb = PackedBI8::zeroed(taps, c_in, total_tiles);
            fused_input_pack(&xq, &bt, &geom, &fq, &mut pb);
            let reference = reference_front(&xq, &bt, &geom, &fq, &bits);
            assert_eq!(
                pb.unpack(),
                reference,
                "m={m} geom {}x{}",
                geom.in_h,
                geom.in_w
            );
        }
    }

    #[test]
    fn fused_back_matches_op_by_op_pipeline_exactly() {
        let mut rng = SeededRng::new(131);
        for (m, geom) in geometry_cases() {
            let n = geom.tile();
            let taps = n * n;
            let (batch, out_ch) = (2usize, 4usize);
            let tr = WinogradTransform::cook_toom(m, 3);
            let at = tr.at().clone();
            let total_tiles = batch * geom.tiles();
            let acc: Vec<i32> = (0..taps * out_ch * total_tiles)
                .map(|_| rng.uniform(-40_000.0, 40_000.0) as i32)
                .collect();
            let reqs: Vec<Requantizer> = (0..taps)
                .map(|t| Requantizer::new(2.4e-4 + 1e-5 * t as f64))
                .collect();
            let bias = rng.uniform_tensor(&[out_ch], -0.3, 0.3);
            let bq = BackQuant {
                reqs: &reqs,
                s_h: 0.034,
                qmax_h: BitWidth::INT8.qmax(),
                s_ay: 0.055,
                qmax_ay: BitWidth::INT8.qmax(),
                s_aya: 0.042,
                qmax_aya: BitWidth::INT8.qmax(),
            };
            for bias in [None, Some(&bias)] {
                let fused = fused_requant_output(
                    &acc,
                    &at,
                    &geom,
                    batch,
                    out_ch,
                    bias.map(|b| b.data()),
                    &bq,
                );
                let reference = reference_back(&acc, &at, &geom, batch, out_ch, bias, &bq);
                assert_eq!(fused.shape(), reference.shape());
                assert_eq!(
                    fused.data(),
                    reference.data(),
                    "m={m} geom {}x{} bias={}",
                    geom.in_h,
                    geom.in_w,
                    bias.is_some()
                );
            }
        }
    }
}
