//! The typed convolution spec: algorithm-aware, validated construction.
//!
//! [`ConvSpec`] is the workspace's description of one convolution layer —
//! the object the paper's experiments manipulate: geometry, the
//! [`ConvAlgo`] implementing it, and the [`QuantConfig`] it is trained
//! under. `ConvSpec::builder()` validates every paper constraint and
//! returns `Result`, so a serving system can reject a bad layer config
//! with a [`WaError`] instead of aborting:
//!
//! ```
//! use wa_core::{ConvAlgo, ConvLayer, ConvSpec};
//! use wa_nn::QuantConfig;
//! use wa_quant::BitWidth;
//! use wa_tensor::SeededRng;
//!
//! let spec = ConvSpec::builder()
//!     .name("conv")
//!     .in_channels(16)
//!     .out_channels(16)
//!     .kernel(3)
//!     .algo(ConvAlgo::WinogradFlex { m: 4 })
//!     .quant(QuantConfig::uniform(BitWidth::INT8))
//!     .build()?;
//! let layer = ConvLayer::from_spec(&spec, &mut SeededRng::new(0))?;
//! assert_eq!(layer.algo().tile_m(), Some(4));
//! # Ok::<(), wa_core::WaError>(())
//! ```

use wa_nn::{Conv2dSpec, QuantConfig, WaError};

use crate::conv_layer::ConvAlgo;

/// Output tile sizes with known-good Cook-Toom points (the paper's F2,
/// F4 and F6 configurations, §5.1).
pub const SUPPORTED_TILE_SIZES: [usize; 3] = [2, 4, 6];

/// Validated configuration of an algorithm-switchable convolution layer.
///
/// Beyond the geometric constraints of a plain convolution, building a
/// `ConvSpec` enforces the paper's Winograd constraints:
///
/// * stride must be 1 ("there is no known equivalent for strided
///   Winograd convolutions", §5.1);
/// * the kernel must be odd and ≥ 3 (Cook-Toom `F(m×m, r×r)` with
///   `r ∈ {3, 5}` in the paper; even kernels have no centered transform);
/// * the output tile `m` must come from [`SUPPORTED_TILE_SIZES`].
#[derive(Clone, Debug, PartialEq)]
pub struct ConvSpec {
    /// Layer name (parameter-name prefix).
    pub name: String,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size `r`.
    pub kernel: usize,
    /// Stride (both dims). Must be 1 for Winograd algorithms.
    pub stride: usize,
    /// Zero padding (all sides).
    pub pad: usize,
    /// Whether the layer has a bias.
    pub bias: bool,
    /// The algorithm implementing the layer.
    pub algo: ConvAlgo,
    /// Quantization of weights, activations and (for Winograd-aware
    /// layers) every intermediate — including the transform-domain
    /// policy ([`QuantConfig::transform`]): under
    /// [`wa_quant::TapPolicy::PerTap`], a Winograd layer built from
    /// this spec calibrates one scale per tap position of the `BᵀdB` /
    /// `G·g·Gᵀ` tiles. The policy is inert for im2row (no Winograd
    /// domain to scale).
    pub quant: QuantConfig,
}

impl ConvSpec {
    /// Starts a builder. Defaults: name `"conv"`, `kernel` 3, `stride` 1,
    /// "same" padding (`kernel / 2`), no bias, [`ConvAlgo::Im2row`], FP32.
    pub fn builder() -> ConvSpecBuilder {
        ConvSpecBuilder {
            name: "conv".to_string(),
            in_channels: 0,
            out_channels: 0,
            kernel: 3,
            stride: 1,
            pad: None,
            bias: false,
            algo: ConvAlgo::Im2row,
            quant: QuantConfig::FP32,
        }
    }

    /// Checks every constraint, as `build()` does (useful after mutating
    /// a spec in place, e.g. a wiNAS algorithm mutation).
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] for bad geometry, [`WaError::UnsupportedAlgo`]
    /// for an unusable algorithm/geometry combination.
    pub fn validate(&self) -> Result<(), WaError> {
        let nonzero = |field: &'static str, v: usize| {
            if v == 0 {
                Err(WaError::invalid("ConvSpec", field, "must be nonzero"))
            } else {
                Ok(())
            }
        };
        nonzero("in_channels", self.in_channels)?;
        nonzero("out_channels", self.out_channels)?;
        nonzero("kernel", self.kernel)?;
        nonzero("stride", self.stride)?;
        if let Some(reason) = self.quant.int8_incompatibility() {
            return Err(WaError::invalid("ConvSpec", "quant.execution", reason));
        }
        validate_algo_geometry(self.algo, self.kernel, self.stride)
    }

    /// The input tile size `n = m + r − 1` of a Winograd spec, `None`
    /// for im2row.
    pub fn input_tile(&self) -> Option<usize> {
        self.algo.tile_m().map(|m| m + self.kernel - 1)
    }

    /// This spec's geometry as a direct-convolution [`Conv2dSpec`]
    /// (dropping the algorithm; used by the im2row path).
    pub fn as_conv2d_spec(&self) -> Result<Conv2dSpec, WaError> {
        Conv2dSpec::builder(self.name.clone())
            .in_channels(self.in_channels)
            .out_channels(self.out_channels)
            .kernel(self.kernel)
            .stride(self.stride)
            .pad(self.pad)
            .bias(self.bias)
            .quant(self.quant)
            .build()
    }

    /// Returns a copy with a different algorithm, re-validated — the
    /// mutation primitive wiNAS uses to move through the search space.
    ///
    /// # Errors
    ///
    /// [`WaError::UnsupportedAlgo`] if `algo` cannot implement this
    /// geometry.
    pub fn with_algo(&self, algo: ConvAlgo) -> Result<ConvSpec, WaError> {
        let mut spec = self.clone();
        spec.algo = algo;
        spec.validate()?;
        Ok(spec)
    }
}

/// Checks an algorithm against a layer geometry — the single source of
/// truth for "can `algo` implement a `kernel`×`kernel`, stride-`stride`
/// convolution", shared by spec building, surgery and wiNAS.
///
/// # Errors
///
/// [`WaError::UnsupportedAlgo`] naming the failing constraint.
pub fn validate_algo_geometry(algo: ConvAlgo, kernel: usize, stride: usize) -> Result<(), WaError> {
    let Some(m) = algo.tile_m() else {
        return Ok(()); // im2row supports any geometry
    };
    if !SUPPORTED_TILE_SIZES.contains(&m) {
        return Err(WaError::unsupported(
            algo,
            format!("output tile m must be one of {SUPPORTED_TILE_SIZES:?}, got {m}"),
        ));
    }
    if stride != 1 {
        return Err(WaError::unsupported(
            algo,
            format!("Winograd requires stride 1 (paper §5.1), got {stride}"),
        ));
    }
    if kernel < 3 || kernel.is_multiple_of(2) {
        return Err(WaError::unsupported(
            algo,
            format!("Winograd requires an odd kernel >= 3, got {kernel}"),
        ));
    }
    Ok(())
}

/// Builder for [`ConvSpec`].
#[derive(Clone, Debug)]
pub struct ConvSpecBuilder {
    name: String,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    pad: Option<usize>,
    bias: bool,
    algo: ConvAlgo,
    quant: QuantConfig,
}

impl ConvSpecBuilder {
    /// Sets the layer name (default `"conv"`).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Sets the input channel count (required).
    pub fn in_channels(mut self, c: usize) -> Self {
        self.in_channels = c;
        self
    }

    /// Sets the output channel count (required).
    pub fn out_channels(mut self, c: usize) -> Self {
        self.out_channels = c;
        self
    }

    /// Sets the square kernel size (default 3).
    pub fn kernel(mut self, k: usize) -> Self {
        self.kernel = k;
        self
    }

    /// Sets the stride (default 1).
    pub fn stride(mut self, s: usize) -> Self {
        self.stride = s;
        self
    }

    /// Sets the zero padding (default `kernel / 2`, i.e. "same" at
    /// stride 1).
    pub fn pad(mut self, p: usize) -> Self {
        self.pad = Some(p);
        self
    }

    /// Enables/disables the bias (default off, as in the paper's models
    /// where batch norm follows every convolution).
    pub fn bias(mut self, b: bool) -> Self {
        self.bias = b;
        self
    }

    /// Sets the implementing algorithm (default [`ConvAlgo::Im2row`]).
    pub fn algo(mut self, a: ConvAlgo) -> Self {
        self.algo = a;
        self
    }

    /// Sets the quantization config (default FP32).
    pub fn quant(mut self, q: QuantConfig) -> Self {
        self.quant = q;
        self
    }

    /// Validates and produces the spec.
    ///
    /// # Errors
    ///
    /// [`WaError::InvalidSpec`] on zero dimensions;
    /// [`WaError::UnsupportedAlgo`] if a Winograd algorithm is combined
    /// with stride ≠ 1, an even/short kernel, or an unsupported tile size.
    pub fn build(self) -> Result<ConvSpec, WaError> {
        let spec = ConvSpec {
            pad: self.pad.unwrap_or(self.kernel / 2),
            name: self.name,
            in_channels: self.in_channels,
            out_channels: self.out_channels,
            kernel: self.kernel,
            stride: self.stride,
            bias: self.bias,
            algo: self.algo,
            quant: self.quant,
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_quant::BitWidth;

    fn base() -> ConvSpecBuilder {
        ConvSpec::builder().in_channels(8).out_channels(8)
    }

    #[test]
    fn paper_example_builds() {
        let spec = ConvSpec::builder()
            .in_channels(16)
            .out_channels(16)
            .kernel(3)
            .algo(ConvAlgo::WinogradFlex { m: 4 })
            .quant(QuantConfig::uniform(BitWidth::INT8))
            .build()
            .unwrap();
        assert_eq!(spec.pad, 1);
        assert_eq!(spec.input_tile(), Some(6));
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(matches!(
            ConvSpec::builder().out_channels(8).build(),
            Err(WaError::InvalidSpec {
                field: "in_channels",
                ..
            })
        ));
        assert!(matches!(
            base().kernel(0).build(),
            Err(WaError::InvalidSpec {
                field: "kernel",
                ..
            })
        ));
    }

    #[test]
    fn winograd_with_stride_two_rejected() {
        let err = base()
            .stride(2)
            .algo(ConvAlgo::Winograd { m: 2 })
            .build()
            .unwrap_err();
        assert!(matches!(err, WaError::UnsupportedAlgo { .. }), "{err}");
        assert!(err.to_string().contains("stride 1"));
        // im2row at stride 2 stays fine
        assert!(base().stride(2).build().is_ok());
    }

    #[test]
    fn winograd_with_even_kernel_rejected() {
        for k in [1usize, 2, 4] {
            let err = base()
                .kernel(k)
                .algo(ConvAlgo::Winograd { m: 2 })
                .build()
                .unwrap_err();
            assert!(
                matches!(err, WaError::UnsupportedAlgo { .. }),
                "kernel {k}: {err}"
            );
        }
        assert!(base()
            .kernel(5)
            .algo(ConvAlgo::Winograd { m: 2 })
            .build()
            .is_ok());
    }

    #[test]
    fn unsupported_tile_sizes_rejected() {
        for m in [0usize, 1, 3, 5, 8] {
            let err = base().algo(ConvAlgo::Winograd { m }).build().unwrap_err();
            assert!(
                matches!(err, WaError::UnsupportedAlgo { .. }),
                "m={m}: {err}"
            );
        }
        for m in SUPPORTED_TILE_SIZES {
            assert!(base().algo(ConvAlgo::WinogradFlex { m }).build().is_ok());
        }
    }

    #[test]
    fn with_algo_revalidates() {
        let spec = base().stride(2).build().unwrap();
        assert!(spec.with_algo(ConvAlgo::Winograd { m: 4 }).is_err());
        let spec = base().build().unwrap();
        let f4 = spec.with_algo(ConvAlgo::Winograd { m: 4 }).unwrap();
        assert_eq!(f4.algo, ConvAlgo::Winograd { m: 4 });
    }
}
