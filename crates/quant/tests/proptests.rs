//! Property-style tests for the quantization primitives, driven by
//! deterministic seeded sweeps.

use wa_quant::{
    dequantize_i32, fake_quant_scale, quantization_rmse, quantize_i32, ste_mask, BitWidth,
    Observer, ObserverMode,
};
use wa_tensor::SeededRng;

/// Fake-quant is idempotent at fixed scale for every width.
#[test]
fn idempotence() {
    let mut rng = SeededRng::new(0x2001);
    for bits in 2u8..=16 {
        for _ in 0..4 {
            let scale = rng.uniform(0.001, 1.0);
            let x = rng.uniform_tensor(&[32], -2.0, 2.0);
            let b = BitWidth::Int(bits);
            let q1 = fake_quant_scale(&x, b, scale);
            let q2 = fake_quant_scale(&q1, b, scale);
            assert_eq!(q1, q2, "bits {bits} scale {scale}");
        }
    }
}

/// |x − q(x)| ≤ scale/2 inside the representable range.
#[test]
fn half_step_error_bound() {
    let mut rng = SeededRng::new(0x2002);
    for bits in 3u8..=12 {
        for _ in 0..6 {
            let x = rng.uniform_tensor(&[64], -1.0, 1.0);
            let b = BitWidth::Int(bits);
            let scale = 1.0 / b.qmax() as f32;
            let q = fake_quant_scale(&x, b, scale);
            for (a, v) in x.data().iter().zip(q.data()) {
                assert!((a - v).abs() <= scale / 2.0 + 1e-6);
            }
        }
    }
}

/// Integer quantize/dequantize agrees with fake-quant exactly.
#[test]
fn integer_path_matches_fake_quant() {
    let mut rng = SeededRng::new(0x2003);
    for bits in 2u8..=16 {
        for _ in 0..4 {
            let x = rng.uniform_tensor(&[16], -3.0, 3.0);
            let b = BitWidth::Int(bits);
            let scale = 0.05f32;
            let ints = quantize_i32(&x, b, scale);
            let deq = dequantize_i32(&ints, scale, &[16]);
            let fq = fake_quant_scale(&x, b, scale);
            for (a, v) in deq.data().iter().zip(fq.data()) {
                assert!((a - v).abs() < 1e-6);
            }
            let qmax = b.qmax();
            for &i in &ints {
                assert!(-qmax <= i && i <= qmax);
            }
        }
    }
}

/// RMSE decreases (weakly) with precision.
#[test]
fn rmse_monotone_in_bits() {
    let mut rng = SeededRng::new(0x2004);
    for _ in 0..16 {
        let x = rng.uniform_tensor(&[128], -1.0, 1.0);
        let mut last = f64::INFINITY;
        for bits in [4u8, 6, 8, 10, 12] {
            let b = BitWidth::Int(bits);
            let e = quantization_rmse(&x, b, 1.0 / b.qmax() as f32);
            assert!(e <= last + 1e-12, "bits {bits} rmse {e} > previous {last}");
            last = e;
        }
    }
}

/// The STE mask is exactly the indicator of the representable range.
#[test]
fn ste_mask_is_range_indicator() {
    let mut rng = SeededRng::new(0x2005);
    for _ in 0..16 {
        let scale = rng.uniform(0.01, 0.2);
        let x = rng.uniform_tensor(&[64], -30.0, 30.0);
        let b = BitWidth::INT8;
        let mask = ste_mask(&x, b, scale);
        let lim = 127.0 * scale;
        for (v, m) in x.data().iter().zip(mask.data()) {
            assert_eq!(*m, if v.abs() <= lim { 1.0 } else { 0.0 });
        }
    }
}

/// Observer scale always covers what it has seen in RunningMax mode:
/// no observed value can saturate by more than rounding.
#[test]
fn running_max_scale_covers_history() {
    let mut rng = SeededRng::new(0x2006);
    for _ in 0..16 {
        let mut obs = Observer::new(ObserverMode::RunningMax);
        let mut all = Vec::new();
        for _ in 0..5 {
            let t = rng.uniform_tensor(&[16], -2.0, 2.0);
            obs.observe(&t);
            all.extend_from_slice(t.data());
        }
        let scale = obs.scale(BitWidth::INT8);
        let lim = 127.0 * scale;
        for v in all {
            assert!(v.abs() <= lim + 1e-5, "{v} exceeds {lim}");
        }
    }
}
