//! Numeric precision descriptors.

/// The precision a tensor is (fake-)quantized to.
///
/// `Fp32` is the identity (no quantization); `Int(b)` is signed symmetric
/// uniform quantization with `2^(b−1) − 1` positive levels, i.e. the
/// representable integers are `−qmax ..= qmax` with `qmax = 2^(b−1) − 1`
/// (the symmetric, zero-point-free scheme of Krishnamoorthi 2018 §2.2 used
/// throughout the paper).
///
/// # Example
///
/// ```
/// use wa_quant::BitWidth;
///
/// assert_eq!(BitWidth::INT8.qmax(), 127);
/// assert_eq!(BitWidth::INT16.qmax(), 32767);
/// assert!(BitWidth::FP32.is_float());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BitWidth {
    /// 32-bit floating point — no quantization.
    Fp32,
    /// Signed integer with the given number of bits (2 ..= 31).
    Int(u8),
}

impl BitWidth {
    /// 32-bit float (identity).
    pub const FP32: BitWidth = BitWidth::Fp32;
    /// 16-bit signed integer.
    pub const INT16: BitWidth = BitWidth::Int(16);
    /// 10-bit signed integer (Figure 4's third panel).
    pub const INT10: BitWidth = BitWidth::Int(10);
    /// 8-bit signed integer.
    pub const INT8: BitWidth = BitWidth::Int(8);

    /// Largest representable quantized magnitude, `2^(b−1) − 1`.
    ///
    /// # Panics
    ///
    /// Panics for `Fp32` (which has no quantization grid) and for widths
    /// outside `2..=31`.
    pub fn qmax(self) -> i32 {
        match self {
            BitWidth::Fp32 => panic!("FP32 has no quantization maximum"),
            BitWidth::Int(b) => {
                assert!((2..=31).contains(&b), "unsupported bit width {}", b);
                (1i32 << (b - 1)) - 1
            }
        }
    }

    /// Whether this is the floating-point (identity) precision.
    pub fn is_float(self) -> bool {
        matches!(self, BitWidth::Fp32)
    }

    /// Number of bits used to store one value (32 for FP32).
    pub fn bits(self) -> u8 {
        match self {
            BitWidth::Fp32 => 32,
            BitWidth::Int(b) => b,
        }
    }

    /// Bytes per element when deployed (ceil of bits/8); INT10 deploys in
    /// 16-bit containers as on real hardware.
    pub fn storage_bytes(self) -> usize {
        match self {
            BitWidth::Fp32 => 4,
            BitWidth::Int(b) if b <= 8 => 1,
            BitWidth::Int(b) if b <= 16 => 2,
            BitWidth::Int(_) => 4,
        }
    }
}

impl std::fmt::Display for BitWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BitWidth::Fp32 => write!(f, "FP32"),
            BitWidth::Int(b) => write!(f, "INT{}", b),
        }
    }
}

/// Error returned when parsing a [`BitWidth`] from its display form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseBitWidthError(pub String);

impl std::fmt::Display for ParseBitWidthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unrecognized bit width `{}` (expected `FP32` or `INT<2..=31>`)",
            self.0
        )
    }
}

impl std::error::Error for ParseBitWidthError {}

impl std::str::FromStr for BitWidth {
    type Err = ParseBitWidthError;

    /// Parses the [`Display`](std::fmt::Display) form back (`"FP32"`,
    /// `"INT8"`, …) — the encoding persisted artifacts (checkpoints,
    /// serving specs) use on the wire. Case-insensitive.
    fn from_str(s: &str) -> Result<BitWidth, ParseBitWidthError> {
        let up = s.trim().to_ascii_uppercase();
        if up == "FP32" {
            return Ok(BitWidth::Fp32);
        }
        if let Some(bits) = up.strip_prefix("INT") {
            if let Ok(b) = bits.parse::<u8>() {
                if (2..=31).contains(&b) {
                    return Ok(BitWidth::Int(b));
                }
            }
        }
        Err(ParseBitWidthError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qmax_values() {
        assert_eq!(BitWidth::INT8.qmax(), 127);
        assert_eq!(BitWidth::INT10.qmax(), 511);
        assert_eq!(BitWidth::INT16.qmax(), 32767);
        assert_eq!(BitWidth::Int(2).qmax(), 1);
    }

    #[test]
    #[should_panic(expected = "FP32 has no quantization maximum")]
    fn fp32_qmax_panics() {
        let _ = BitWidth::FP32.qmax();
    }

    #[test]
    #[should_panic(expected = "unsupported bit width")]
    fn int1_panics() {
        let _ = BitWidth::Int(1).qmax();
    }

    #[test]
    fn display_matches_paper_nomenclature() {
        assert_eq!(BitWidth::FP32.to_string(), "FP32");
        assert_eq!(BitWidth::INT8.to_string(), "INT8");
        assert_eq!(BitWidth::INT10.to_string(), "INT10");
    }

    #[test]
    fn storage_bytes() {
        assert_eq!(BitWidth::FP32.storage_bytes(), 4);
        assert_eq!(BitWidth::INT8.storage_bytes(), 1);
        assert_eq!(BitWidth::INT10.storage_bytes(), 2);
        assert_eq!(BitWidth::INT16.storage_bytes(), 2);
    }

    #[test]
    fn ordering_is_by_precision() {
        assert!(BitWidth::Int(8) < BitWidth::Int(16));
    }
}
