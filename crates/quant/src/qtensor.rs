//! Prepacked `i8` buffers for the true integer inference path.

use crate::BitWidth;
use wa_tensor::Tensor;

/// Quantizes `x` onto the `i8` grid of `(bits, scale)` with exactly the
/// arithmetic of [`crate::quantize_i32`]: `clamp(round(x/scale), −qmax,
/// qmax)`. Because [`crate::fake_quant_scale`] shares that arithmetic,
/// quantizing a fake-quantized tensor with its own scale recovers the
/// integer grid values bit-for-bit.
///
/// # Panics
///
/// Panics if `bits` is FP32 or wider than 8 bits (the values must fit
/// `i8`), or if `scale` is not positive.
pub fn quantize_i8(x: &Tensor, bits: BitWidth, scale: f32) -> Vec<i8> {
    let qmax = check_i8_bits(bits);
    assert!(scale > 0.0, "quantize_i8 requires a positive scale");
    x.data()
        .iter()
        .map(|&v| crate::round_clamp_i32(v / scale, qmax) as i8)
        .collect()
}

/// Tap-wise [`quantize_i8`]: the element at flat index `i` is quantized
/// with `(bits[i % taps], scales[i % taps])` — one grid per tap position
/// of an `n×n` Winograd tile, matching [`crate::fake_quant_taps`].
///
/// # Panics
///
/// Panics if `bits`/`scales` disagree in length or do not divide the
/// tensor's length, if any tap is FP32 or wider than 8 bits, or if any
/// scale is not positive.
pub fn quantize_i8_taps(x: &Tensor, bits: &[BitWidth], scales: &[f32]) -> Vec<i8> {
    let taps = bits.len();
    assert_eq!(taps, scales.len(), "bits/scales length mismatch");
    assert!(taps > 0, "need at least one tap");
    assert_eq!(
        x.len() % taps,
        0,
        "tensor length {} is not a multiple of the tap count {}",
        x.len(),
        taps
    );
    let qmaxes: Vec<i32> = bits.iter().map(|&b| check_i8_bits(b)).collect();
    for &s in scales {
        assert!(s > 0.0, "quantize_i8_taps requires positive scales");
    }
    // chunk-wise (tap = flat index % taps) keeps the inner loop free of
    // the per-element modulo
    let mut out = Vec::with_capacity(x.len());
    for chunk in x.data().chunks_exact(taps) {
        for (t, &v) in chunk.iter().enumerate() {
            out.push(crate::round_clamp_i32(v / scales[t], qmaxes[t]) as i8);
        }
    }
    out
}

fn check_i8_bits(bits: BitWidth) -> i32 {
    assert!(
        !bits.is_float(),
        "the integer path cannot represent an FP32 site"
    );
    let qmax = bits.qmax();
    assert!(qmax <= i8::MAX as i32, "{bits} does not fit i8 storage");
    qmax
}

/// A quantized tensor: `i8` data plus the shape and the per-layer (one
/// entry) or per-tap (`n²` entries, tap = flat index mod tap count)
/// scales needed to interpret it. This is the storage format of
/// prepacked weights and the memoized Winograd-domain filter on the
/// [`Execution::Int8`](crate::Execution::Int8) path — 4× smaller than
/// the f32 original, and directly consumable by `wa_tensor::gemm_i8`.
///
/// # Example
///
/// ```
/// use wa_quant::{BitWidth, QTensor};
/// use wa_tensor::Tensor;
///
/// let w = Tensor::from_vec(vec![0.5, -0.25, 1.0, 0.0], &[2, 2]);
/// let q = QTensor::quantize(&w, BitWidth::INT8, 1.0 / 127.0);
/// assert_eq!(q.shape(), &[2, 2]);
/// assert_eq!(q.data()[0], 64); // 0.5 · 127 rounded up
/// let back = q.dequantize();
/// assert!((back.data()[0] - 0.5) < 1e-2);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct QTensor {
    data: Vec<i8>,
    shape: Vec<usize>,
    scales: Vec<f32>,
}

impl QTensor {
    /// Quantizes `x` with one per-layer scale (see [`quantize_i8`]).
    ///
    /// # Panics
    ///
    /// As [`quantize_i8`].
    pub fn quantize(x: &Tensor, bits: BitWidth, scale: f32) -> QTensor {
        QTensor {
            data: quantize_i8(x, bits, scale),
            shape: x.shape().to_vec(),
            scales: vec![scale],
        }
    }

    /// Quantizes `x` tap-wise (see [`quantize_i8_taps`]).
    ///
    /// # Panics
    ///
    /// As [`quantize_i8_taps`].
    pub fn quantize_taps(x: &Tensor, bits: &[BitWidth], scales: &[f32]) -> QTensor {
        QTensor {
            data: quantize_i8_taps(x, bits, scales),
            shape: x.shape().to_vec(),
            scales: scales.to_vec(),
        }
    }

    /// Wraps already-quantized data. The scale slice must have one entry
    /// (per-layer) or divide the data length (per-tap).
    ///
    /// # Panics
    ///
    /// Panics on a shape/data length mismatch or an invalid scale count.
    pub fn from_parts(data: Vec<i8>, shape: &[usize], scales: Vec<f32>) -> QTensor {
        let len: usize = shape.iter().product();
        assert_eq!(data.len(), len, "data length does not match shape");
        assert!(
            !scales.is_empty() && len.is_multiple_of(scales.len()),
            "scale count {} does not divide tensor length {}",
            scales.len(),
            len
        );
        QTensor {
            data,
            shape: shape.to_vec(),
            scales,
        }
    }

    /// The quantized values.
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// Tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The scale vector: one entry for per-layer quantization, `n²`
    /// entries for tap-wise (tap = flat index mod count).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// The single per-layer scale.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is tap-wise quantized.
    pub fn scale(&self) -> f32 {
        assert_eq!(
            self.scales.len(),
            1,
            "QTensor::scale on a tap-wise tensor; use scales()"
        );
        self.scales[0]
    }

    /// Expands back to f32 (`q·scale` per element) — the verification
    /// hook: dequantizing recovers exactly what the fake-quant reference
    /// produces at this site.
    pub fn dequantize(&self) -> Tensor {
        let taps = self.scales.len();
        let data: Vec<f32> = self
            .data
            .iter()
            .enumerate()
            .map(|(i, &q)| q as f32 * self.scales[i % taps])
            .collect();
        Tensor::from_vec(data, &self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fake_quant_scale, fake_quant_taps, quantize_i32};

    #[test]
    fn matches_quantize_i32() {
        let x = Tensor::from_vec(vec![0.73, -1.9, 0.004, -0.51, 2.0, -2.0], &[6]);
        let scale = 1.5 / 127.0;
        let q = quantize_i8(&x, BitWidth::INT8, scale);
        let reference = quantize_i32(&x, BitWidth::INT8, scale);
        assert_eq!(q.iter().map(|&v| v as i32).collect::<Vec<_>>(), reference);
    }

    #[test]
    fn requantizing_fake_quant_recovers_grid() {
        let x = Tensor::from_vec(vec![0.9, -0.33, 0.123, -1.4], &[4]);
        let scale = 1.4 / 127.0;
        let fq = fake_quant_scale(&x, BitWidth::INT8, scale);
        let q_direct = quantize_i8(&x, BitWidth::INT8, scale);
        let q_from_fq = quantize_i8(&fq, BitWidth::INT8, scale);
        assert_eq!(q_direct, q_from_fq);
    }

    #[test]
    fn tap_wise_matches_fake_quant_taps_grid() {
        let x = Tensor::from_vec((0..12).map(|i| i as f32 * 0.1 - 0.6).collect(), &[3, 4]);
        let bits = vec![
            BitWidth::INT8,
            BitWidth::Int(6),
            BitWidth::INT8,
            BitWidth::Int(4),
        ];
        let scales = vec![0.01, 0.02, 0.005, 0.04];
        let q = QTensor::quantize_taps(&x, &bits, &scales);
        let fq = fake_quant_taps(&x, &bits, &scales);
        let dq = q.dequantize();
        for (a, b) in dq.data().iter().zip(fq.data()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "does not fit i8")]
    fn rejects_wide_bits() {
        let x = Tensor::zeros(&[2]);
        let _ = quantize_i8(&x, BitWidth::INT16, 0.1);
    }
}
