//! Execution-mode selector: fake-quant simulation vs the true integer path.

/// How a quantized layer *executes* at inference time.
///
/// Training always runs fake-quant (STE needs f32 gradients); this knob
/// selects the arithmetic of the read-only `Infer` path:
///
/// * [`Execution::FakeQuant`] — the default: every site
///   quantize-dequantizes in f32, so "INT8" costs exactly what f32
///   costs. This is the reference semantics the paper trains against.
/// * [`Execution::Int8`] — the deployment path: weights and the
///   Winograd-domain filter are stored as `i8`, activations are
///   quantized to `i8` on entry, the GEMM accumulates `i8×i8→i32`, and
///   results are requantized with a fixed-point multiplier+shift
///   ([`crate::Requantizer`]). Requires integer activation/weight
///   widths of at most 8 bits.
///
/// # Example
///
/// ```
/// use wa_quant::Execution;
///
/// assert_eq!("int8".parse::<Execution>().unwrap(), Execution::Int8);
/// assert_eq!(Execution::default(), Execution::FakeQuant);
/// assert_eq!(Execution::Int8.to_string(), "int8");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Execution {
    /// Quantize-dequantize in f32 (simulation; the training semantics).
    #[default]
    FakeQuant,
    /// True integer arithmetic: i8 storage, i32 accumulation,
    /// fixed-point requantization.
    Int8,
}

impl std::fmt::Display for Execution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Execution::FakeQuant => "fake-quant",
            Execution::Int8 => "int8",
        })
    }
}

/// Error for unrecognized [`Execution`] strings.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseExecutionError(
    /// The rejected input.
    pub String,
);

impl std::fmt::Display for ParseExecutionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unrecognized execution mode `{}` (expected `fake-quant` or `int8`)",
            self.0
        )
    }
}

impl std::error::Error for ParseExecutionError {}

impl std::str::FromStr for Execution {
    type Err = ParseExecutionError;

    fn from_str(s: &str) -> Result<Execution, ParseExecutionError> {
        match s.to_ascii_lowercase().as_str() {
            "fake-quant" | "fakequant" | "fake_quant" => Ok(Execution::FakeQuant),
            "int8" => Ok(Execution::Int8),
            _ => Err(ParseExecutionError(s.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for e in [Execution::FakeQuant, Execution::Int8] {
            assert_eq!(e.to_string().parse::<Execution>().unwrap(), e);
        }
        assert!("int4".parse::<Execution>().is_err());
    }
}
