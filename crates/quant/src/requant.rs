//! Fixed-point requantization: the integer path's replacement for
//! "multiply by `scale_in·scale_w/scale_out` in f32".

/// Converts a positive effective scale (`scale_in·scale_w/scale_out`)
/// into an `i32` multiplier and a right shift, so an `i32` GEMM
/// accumulator can be rescaled onto the next layer's grid with pure
/// integer arithmetic — the deployment recipe of gemmlowp, LANCE (Li et
/// al. 2020) and Tap-Wise Quantization (Andri et al. 2022).
///
/// `apply(acc)` computes `round(acc · scale)` to within ±1:
/// the multiplier carries 30 significant bits, so the fixed-point
/// product differs from the real product by less than `2⁻³⁰·|acc·scale|`
/// and the result differs from exact rounding by at most one quantum
/// (only when the real product sits within that sliver of a rounding
/// boundary). Rounding is half-away-from-zero, matching `f32::round` as
/// used by [`crate::quantize_i32`]; [`Requantizer::apply_clamped`]
/// reuses that function's `±qmax` clamp semantics.
///
/// # Example
///
/// ```
/// use wa_quant::Requantizer;
///
/// let r = Requantizer::new(0.25);
/// assert_eq!(r.apply(1001), 250); // round(250.25)
/// assert_eq!(r.apply(-1002), -251); // round(-250.5) away from zero
/// assert_eq!(r.apply_clamped(100_000, 127), 127);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Requantizer {
    multiplier: i32,
    shift: u32,
}

impl Requantizer {
    /// Decomposes `scale` into `multiplier · 2^−shift` with a 30-bit
    /// multiplier.
    ///
    /// Scales too small to matter (`< ~2⁻³³`, e.g. the
    /// `f32::MIN_POSITIVE` fallback of a never-observed tap) collapse to
    /// the constant-zero requantizer, which is exact: every reachable
    /// accumulator rounds to 0 at such a scale. Scales `≥ 2³⁰` saturate
    /// the multiplier (the clamped result saturates anyway).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    pub fn new(scale: f64) -> Requantizer {
        assert!(
            scale.is_finite() && scale > 0.0,
            "requantize scale must be a positive finite number, got {scale}"
        );
        let mut m = scale;
        let mut shift: i64 = 0;
        while m < (1i64 << 29) as f64 {
            m *= 2.0;
            shift += 1;
        }
        while m >= (1i64 << 30) as f64 {
            m /= 2.0;
            shift -= 1;
        }
        // now scale = m · 2^−shift with m ∈ [2^29, 2^30)
        let multiplier = m.round() as i64;
        if shift < 0 {
            // scale ≥ 2^30: absurd for any real calibration; saturate.
            return Requantizer {
                multiplier: i32::MAX,
                shift: 0,
            };
        }
        if shift > 62 {
            // scale < ~2^-33: every |acc| < 2^31 rounds to 0.
            return Requantizer {
                multiplier: 0,
                shift: 0,
            };
        }
        Requantizer {
            multiplier: multiplier.min(i32::MAX as i64) as i32,
            shift: shift as u32,
        }
    }

    /// `round(acc · scale)` in pure integer arithmetic (±1; see the
    /// type-level contract), saturating at the `i32` range.
    pub fn apply(&self, acc: i32) -> i32 {
        let prod = acc as i64 * self.multiplier as i64;
        let r = if self.shift == 0 {
            prod
        } else {
            // round half away from zero, like f32::round — branchless
            // (mixed-sign accumulators would make a sign branch
            // unpredictable in the per-element requantize loops):
            // shift the magnitude, restore the sign via the mask
            let half = 1i64 << (self.shift - 1);
            let sign = prod >> 63; // 0 or -1
            let mag = (prod ^ sign) - sign;
            (((mag + half) >> self.shift) ^ sign) - sign
        };
        r.clamp(i32::MIN as i64, i32::MAX as i64) as i32
    }

    /// [`Requantizer::apply`] followed by the symmetric `±qmax` clamp of
    /// [`crate::quantize_i32`] — one requantized output value on the
    /// destination grid.
    pub fn apply_clamped(&self, acc: i32, qmax: i32) -> i32 {
        self.apply(acc).clamp(-qmax, qmax)
    }

    /// The scale this requantizer approximates (`multiplier · 2^−shift`).
    pub fn effective_scale(&self) -> f64 {
        self.multiplier as f64 / (1i64 << self.shift) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_f64_rounding_within_one() {
        let scales = [0.5, 0.1, 1.0 / 127.0, 3.7e-4, 0.9999, 1.5, 12.25];
        let accs = [-1_000_000i32, -12345, -1, 0, 1, 777, 32768, 2_000_000];
        for &s in &scales {
            let r = Requantizer::new(s);
            for &acc in &accs {
                let exact = (acc as f64 * s).round() as i64;
                let got = r.apply(acc) as i64;
                assert!(
                    (got - exact).abs() <= 1,
                    "scale {s}, acc {acc}: fixed-point {got} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn typical_conv_scales_are_exact() {
        // For the scales a calibrated conv actually produces, the 30-bit
        // multiplier reproduces f64 rounding exactly on small magnitudes.
        let r = Requantizer::new(0.003921568859368563); // ~1/255
        for acc in -50_000..50_000 {
            let exact = (acc as f64 * 0.003921568859368563).round() as i32;
            assert_eq!(r.apply(acc), exact, "acc {acc}");
        }
    }

    #[test]
    fn tiny_scale_collapses_to_zero() {
        let r = Requantizer::new(f32::MIN_POSITIVE as f64);
        assert_eq!(r.apply(i32::MAX), 0);
        assert_eq!(r.apply(i32::MIN), 0);
    }

    #[test]
    fn clamp_reuses_quantize_semantics() {
        let r = Requantizer::new(1.0);
        assert_eq!(r.apply_clamped(200, 127), 127);
        assert_eq!(r.apply_clamped(-200, 127), -127);
        assert_eq!(r.apply_clamped(55, 127), 55);
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn rejects_nonpositive_scale() {
        let _ = Requantizer::new(0.0);
    }
}
