//! Quantize/dequantize kernels and the STE gradient mask.

use std::sync::{Arc, OnceLock};

use wa_tensor::Tensor;

use crate::bitwidth::BitWidth;
use crate::observer::Observer;

/// Bumps `wa_fake_quant_calls_total{kind=...}` through a per-kind cached
/// handle (one relaxed add per kernel invocation).
fn count_fake_quant(cell: &OnceLock<Arc<wa_obs::Counter>>, kind: &'static str) {
    cell.get_or_init(|| {
        wa_obs::counter_with(
            "wa_fake_quant_calls_total",
            "Fake-quantization kernel invocations, by kind (uniform scale vs tap-wise).",
            &[("kind", kind)],
        )
    })
    .inc();
}

/// Fake-quantizes `x` (quantize then dequantize, staying in f32) using a
/// scale derived from `observer`, updating the observer first.
///
/// FP32 returns a clone. This is the training-time forward of every `Qx`
/// box in Figure 2 of the paper.
pub fn fake_quant(x: &Tensor, bits: BitWidth, observer: &mut Observer) -> Tensor {
    if bits.is_float() {
        return x.clone();
    }
    observer.observe(x);
    fake_quant_scale(x, bits, observer.scale(bits))
}

/// Fake-quantizes `x` with an explicit scale.
///
/// Values are mapped to `clamp(round(x / scale), −qmax, qmax) · scale`.
/// FP32 returns a clone; a non-positive scale maps everything to zero.
///
/// # Example
///
/// ```
/// use wa_quant::{fake_quant_scale, BitWidth};
/// use wa_tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![1.0, -3.0], &[2]);
/// // scale chosen so qmax*scale = 2.0 -> -3.0 saturates to -2.0
/// let q = fake_quant_scale(&x, BitWidth::INT8, 2.0 / 127.0);
/// assert!((q.data()[1] + 2.0).abs() < 1e-6);
/// ```
pub fn fake_quant_scale(x: &Tensor, bits: BitWidth, scale: f32) -> Tensor {
    if bits.is_float() {
        return x.clone();
    }
    static CALLS: OnceLock<Arc<wa_obs::Counter>> = OnceLock::new();
    count_fake_quant(&CALLS, "scale");
    if scale <= 0.0 {
        return Tensor::zeros(x.shape());
    }
    let qmax = bits.qmax();
    x.map(|v| round_clamp_i32(v / scale, qmax) as f32 * scale)
}

/// `clamp(round(x), −qmax, qmax)` with `f32::round` semantics (round
/// half away from zero), built from two truncating casts so the x86-64
/// SSE2 baseline autovectorizes it with `cvttps2dq` instead of emitting
/// a `roundf` libm call per element — this sits in the inner loop of
/// every quantize/fake-quant pass. Bit-identical to
/// `(x.round() as i64).clamp(-qmax as i64, qmax as i64) as i32` for
/// every input including ±∞ and NaN (both formulations take NaN to 0):
/// the pre-clamp only moves values the final clamp saturates anyway, and
/// within the clamped domain `x − trunc(x)` is exact (Sterbenz) and
/// every f32 ≥ 2²⁴ is already integral.
///
/// The casts are `to_int_unchecked`, not `as`: a saturating `as` cast
/// lowers to `fptosi.sat`, which LLVM scalarizes (`cvttss2si` per lane)
/// on the SSE2 baseline and makes the cast the dominant cost of every
/// snap loop. The explicit NaN select plus the `±lim` clamp establish
/// the unchecked casts' range preconditions while staying vectorizable
/// (an ordered-compare mask and `minps`/`maxps`).
///
/// # Panics
///
/// Debug-panics if `qmax` is not in `[1, 2³⁰ − 1]` (every
/// [`BitWidth::qmax`] is).
#[inline]
pub fn round_clamp_i32(x: f32, qmax: i32) -> i32 {
    debug_assert!((1..=(1 << 30) - 1).contains(&qmax));
    let lim = (qmax + 1) as f32;
    let x = if x.is_nan() { 0.0 } else { x };
    let x = x.clamp(-lim, lim);
    // SAFETY: x is NaN-free and clamped to [−lim, lim] ⊆ [−2³⁰, 2³⁰],
    // every value of which is representable in i32
    let t = unsafe { x.to_int_unchecked::<i32>() };
    let frac = x - t as f32;
    // SAFETY: |frac| < 1 by construction, so 2·frac ∈ (−2, 2)
    let half = unsafe { (2.0 * frac).to_int_unchecked::<i32>() };
    (t + half).clamp(-qmax, qmax)
}

/// Fake-quantizes a Winograd-domain tensor tap-by-tap: the element at
/// flat index `i` belongs to tap `i % bits.len()` and is snapped to that
/// tap's grid (`bits[t]`, `scales[t]`). FP32 taps pass through untouched.
///
/// With every tap at one shared `(bits, scale)` this is **bit-for-bit**
/// identical to [`fake_quant_scale`] — the per-element arithmetic is the
/// same; only the scale lookup differs.
///
/// # Panics
///
/// Panics if `bits` and `scales` disagree in length, are empty, or the
/// tensor's length is not a multiple of the tap count.
///
/// # Example
///
/// ```
/// use wa_quant::{fake_quant_taps, BitWidth};
/// use wa_tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![0.26, 0.26], &[1, 2]);
/// // tap 0 quantizes at step 0.1, tap 1 passes through
/// let q = fake_quant_taps(&x, &[BitWidth::INT8, BitWidth::FP32], &[0.1, 1.0]);
/// assert!((q.data()[0] - 0.3).abs() < 1e-6);
/// assert_eq!(q.data()[1], 0.26);
/// ```
pub fn fake_quant_taps(x: &Tensor, bits: &[BitWidth], scales: &[f32]) -> Tensor {
    let taps = check_taps(x, bits, scales);
    static CALLS: OnceLock<Arc<wa_obs::Counter>> = OnceLock::new();
    count_fake_quant(&CALLS, "taps");
    let mut out = x.deep_clone();
    // per-tap constants hoisted so the inner loop is pure arithmetic
    // (tap = flat index % taps ⇔ position within each `taps`-wide chunk)
    let qmaxes: Vec<i32> = bits
        .iter()
        .map(|b| if b.is_float() { 0 } else { b.qmax() })
        .collect();
    for chunk in out.data_mut().chunks_exact_mut(taps) {
        for (t, v) in chunk.iter_mut().enumerate() {
            if bits[t].is_float() {
                continue;
            }
            let scale = scales[t];
            if scale <= 0.0 {
                *v = 0.0;
                continue;
            }
            *v = round_clamp_i32(*v / scale, qmaxes[t]) as f32 * scale;
        }
    }
    out
}

/// Tap-wise counterpart of [`ste_mask`]: 1 where the element's tap passes
/// gradients (FP32 tap, or |x| within that tap's representable range),
/// 0 where that tap's quantizer saturates.
///
/// # Panics
///
/// Panics under the same conditions as [`fake_quant_taps`].
pub fn ste_mask_taps(x: &Tensor, bits: &[BitWidth], scales: &[f32]) -> Tensor {
    let taps = check_taps(x, bits, scales);
    let mut out = Tensor::ones(x.shape());
    {
        let src = x.data();
        let dst = out.data_mut();
        for i in 0..src.len() {
            let t = i % taps;
            if bits[t].is_float() {
                continue;
            }
            if scales[t] <= 0.0 {
                continue;
            }
            let lim = bits[t].qmax() as f32 * scales[t];
            if src[i].abs() > lim {
                dst[i] = 0.0;
            }
        }
    }
    out
}

/// Shared validation for the tap-wise kernels; returns the tap count.
fn check_taps(x: &Tensor, bits: &[BitWidth], scales: &[f32]) -> usize {
    assert!(
        !bits.is_empty(),
        "tap-wise quantization needs at least one tap"
    );
    assert_eq!(
        bits.len(),
        scales.len(),
        "per-tap bits and scales must pair up"
    );
    assert!(
        x.len().is_multiple_of(bits.len()),
        "tap-wise quantization needs a [.., {}] layout, got {} elements",
        bits.len(),
        x.len()
    );
    bits.len()
}

/// Straight-through-estimator mask: 1 where the quantizer passes gradients
/// (|x| within the representable range), 0 where it saturates.
///
/// The STE treats `round` as identity but blocks gradients outside the clip
/// range, matching the behaviour of `FakeQuantize` in mainstream
/// frameworks. FP32 returns all-ones.
pub fn ste_mask(x: &Tensor, bits: BitWidth, scale: f32) -> Tensor {
    if bits.is_float() || scale <= 0.0 {
        return Tensor::ones(x.shape());
    }
    let lim = bits.qmax() as f32 * scale;
    x.map(|v| if v.abs() <= lim { 1.0 } else { 0.0 })
}

/// Quantizes to integers `clamp(round(x/scale), −qmax, qmax)`.
///
/// # Panics
///
/// Panics if `bits` is FP32 or `scale <= 0`.
pub fn quantize_i32(x: &Tensor, bits: BitWidth, scale: f32) -> Vec<i32> {
    assert!(!bits.is_float(), "cannot integer-quantize at FP32");
    assert!(
        scale > 0.0,
        "quantization scale must be positive, got {}",
        scale
    );
    let qmax = bits.qmax();
    x.data()
        .iter()
        .map(|&v| round_clamp_i32(v / scale, qmax))
        .collect()
}

/// Dequantizes integers back to f32: `q * scale`.
pub fn dequantize_i32(q: &[i32], scale: f32, shape: &[usize]) -> Tensor {
    Tensor::from_vec(q.iter().map(|&v| v as f32 * scale).collect(), shape)
}

/// Root-mean-square quantization error of fake-quantizing `x` at the given
/// precision and scale — a direct measure of the numerical noise a layer
/// injects (the quantity that explodes for large Winograd tiles, Table 1).
pub fn quantization_rmse(x: &Tensor, bits: BitWidth, scale: f32) -> f64 {
    if bits.is_float() {
        return 0.0;
    }
    let q = fake_quant_scale(x, bits, scale);
    let mut acc = 0.0f64;
    for (a, b) in x.data().iter().zip(q.data()) {
        let d = (a - b) as f64;
        acc += d * d;
    }
    (acc / x.len().max(1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::ObserverMode;
    use wa_tensor::SeededRng;

    #[test]
    fn fp32_is_identity() {
        let x = Tensor::from_vec(vec![0.123456, -9.87], &[2]);
        let mut obs = Observer::default();
        assert_eq!(fake_quant(&x, BitWidth::FP32, &mut obs), x);
        assert_eq!(obs.observations(), 0, "FP32 must not touch the observer");
    }

    #[test]
    fn grid_snapping() {
        let x = Tensor::from_vec(vec![0.26, -0.26, 0.24], &[3]);
        // scale 0.1: rounds to 0.3, -0.3, 0.2
        let q = fake_quant_scale(&x, BitWidth::INT8, 0.1);
        let want = [0.3f32, -0.3, 0.2];
        for (a, b) in q.data().iter().zip(&want) {
            assert!((a - b).abs() < 1e-6, "{} vs {}", a, b);
        }
    }

    #[test]
    fn saturation_clamps_to_qmax() {
        let x = Tensor::from_vec(vec![100.0, -100.0], &[2]);
        let q = fake_quant_scale(&x, BitWidth::INT8, 0.1);
        assert!((q.data()[0] - 12.7).abs() < 1e-5);
        assert!((q.data()[1] + 12.7).abs() < 1e-5);
    }

    #[test]
    fn idempotence() {
        let mut rng = SeededRng::new(3);
        let x = rng.uniform_tensor(&[64], -1.0, 1.0);
        let q1 = fake_quant_scale(&x, BitWidth::INT8, 1.0 / 127.0);
        let q2 = fake_quant_scale(&q1, BitWidth::INT8, 1.0 / 127.0);
        assert_eq!(q1, q2, "fake-quant must be idempotent at fixed scale");
    }

    #[test]
    fn error_bounded_by_half_step() {
        let mut rng = SeededRng::new(4);
        let x = rng.uniform_tensor(&[256], -1.0, 1.0);
        let scale = 1.0 / 127.0;
        let q = fake_quant_scale(&x, BitWidth::INT8, scale);
        for (a, b) in x.data().iter().zip(q.data()) {
            assert!((a - b).abs() <= scale / 2.0 + 1e-6);
        }
    }

    #[test]
    fn higher_precision_lower_rmse() {
        let mut rng = SeededRng::new(5);
        let x = rng.uniform_tensor(&[512], -1.0, 1.0);
        let e8 = quantization_rmse(&x, BitWidth::INT8, 1.0 / 127.0);
        let e16 = quantization_rmse(&x, BitWidth::INT16, 1.0 / 32767.0);
        assert!(e16 < e8 / 100.0, "INT16 rmse {} vs INT8 {}", e16, e8);
        assert_eq!(quantization_rmse(&x, BitWidth::FP32, 1.0), 0.0);
    }

    #[test]
    fn ste_mask_zeroes_saturated() {
        let x = Tensor::from_vec(vec![0.5, 20.0, -20.0], &[3]);
        let m = ste_mask(&x, BitWidth::INT8, 0.1); // limit = 12.7
        assert_eq!(m.data(), &[1.0, 0.0, 0.0]);
        assert_eq!(ste_mask(&x, BitWidth::FP32, 0.1).data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn integer_roundtrip() {
        let x = Tensor::from_vec(vec![0.5, -0.25, 0.0], &[3]);
        let q = quantize_i32(&x, BitWidth::INT8, 0.25);
        assert_eq!(q, vec![2, -1, 0]);
        let back = dequantize_i32(&q, 0.25, &[3]);
        assert_eq!(back.data(), x.data());
    }

    /// The fast `round_clamp_i32` (unchecked-cast, vectorizable) must
    /// agree with the obviously-correct i64 formulation on every input
    /// class: rounding boundaries, saturation edges, non-finites and a
    /// dense random sweep. This pins the SAFETY reasoning of the
    /// unchecked casts — any input that escaped the range preconditions
    /// would show up here as a miscompare (or UB under Miri).
    #[test]
    fn round_clamp_matches_i64_reference() {
        let reference = |x: f32, qmax: i32| -> i32 {
            let r = x.round();
            if r.is_nan() {
                return 0;
            }
            (r as i64).clamp(-qmax as i64, qmax as i64) as i32
        };
        let qmaxes = [1, 7, 127, 32_767, (1 << 30) - 1];
        let mut cases = vec![
            0.0f32,
            -0.0,
            0.49999997,
            0.5,
            0.50000006,
            1.5,
            2.5,
            -0.5,
            -1.5,
            126.5,
            127.0,
            127.49,
            127.5,
            128.0,
            -127.5,
            -128.0,
            1e30,
            -1e30,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::MIN_POSITIVE,
            -f32::MIN_POSITIVE,
            1.0e-45, // smallest subnormal
            16_777_216.0,
            16_777_215.0,
            (1u32 << 30) as f32,
        ];
        let mut rng = SeededRng::new(11);
        for _ in 0..10_000 {
            cases.push(rng.uniform(-200.0, 200.0));
            cases.push(rng.uniform(-4e9, 4e9));
        }
        for &qmax in &qmaxes {
            for &x in &cases {
                assert_eq!(
                    round_clamp_i32(x, qmax),
                    reference(x, qmax),
                    "x = {x:?}, qmax = {qmax}"
                );
            }
        }
    }

    #[test]
    fn observer_driven_fake_quant_uses_range() {
        let mut obs = Observer::new(ObserverMode::RunningMax);
        let x = Tensor::from_vec(vec![1.27, -0.635], &[2]);
        let q = fake_quant(&x, BitWidth::INT8, &mut obs);
        // range = 1.27 => scale = 0.01; -63.5 rounds half-away to -64
        assert!((q.data()[0] - 1.27).abs() < 1e-6);
        assert!((q.data()[1] + 0.64).abs() < 1e-5);
    }
}
