//! # wa-quant
//!
//! Uniform **symmetric** per-tensor quantization with straight-through
//! estimator (STE) gradients, following the scheme of Krishnamoorthi (2018)
//! that *Searching for Winograd-aware Quantized Networks* (MLSys 2020)
//! adopts for its INT8/INT10/INT16 experiments.
//!
//! The building blocks are:
//!
//! * [`BitWidth`] — FP32 or a signed integer width (INT8/INT10/INT16, …).
//! * [`Observer`] — tracks the dynamic range of a tensor as a running
//!   maximum or an exponential moving average (the paper warms these up
//!   on the training set before evaluating post-training swaps, Table 1).
//! * [`fake_quant`] / [`fake_quant_scale`] — quantize-dequantize in f32,
//!   exposing the rounding error to training.
//! * [`ste_mask`] — the STE pass-through mask used by the autograd engine.
//! * [`TapQuant`] / [`TapPolicy`] / [`fake_quant_taps`] — **tap-wise**
//!   quantization of Winograd-domain tensors: one scale (and optionally
//!   one bit-width) per tap position of the `n×n` transformed tile
//!   (Tap-Wise Quantization, Andri et al. 2022), selected per layer by
//!   the transform-domain policy.
//! * [`Execution`] / [`QTensor`] / [`Requantizer`] — the **true
//!   integer** inference path: prepacked `i8` buffers with per-layer or
//!   per-tap scales, and fixed-point (`i32` multiplier + right-shift)
//!   requantization of `i8×i8→i32` GEMM accumulators, the deployment
//!   recipe of LANCE (Li et al. 2020) and Andri et al. 2022.
//!
//! # Example
//!
//! ```
//! use wa_quant::{fake_quant_scale, BitWidth};
//! use wa_tensor::Tensor;
//!
//! let x = Tensor::from_vec(vec![0.1, -0.5, 0.92], &[3]);
//! let q = fake_quant_scale(&x, BitWidth::INT8, 1.0 / 127.0);
//! // INT8 symmetric over [-1, 1]: 0.1 snaps to 13/127
//! assert!((q.data()[0] - 13.0 / 127.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]

mod bitwidth;
mod execution;
mod observer;
mod qtensor;
mod quantize;
mod requant;
mod tap;

pub use bitwidth::{BitWidth, ParseBitWidthError};
pub use execution::{Execution, ParseExecutionError};
pub use observer::{Observer, ObserverMode};
pub use qtensor::{quantize_i8, quantize_i8_taps, QTensor};
pub use quantize::{
    dequantize_i32, fake_quant, fake_quant_scale, fake_quant_taps, quantization_rmse, quantize_i32,
    round_clamp_i32, ste_mask, ste_mask_taps,
};
pub use requant::Requantizer;
pub use tap::{ParseTapPolicyError, TapPolicy, TapQuant};
