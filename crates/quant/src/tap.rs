//! Tap-wise quantization over the Winograd-domain tile grid.
//!
//! A Winograd-domain tensor (`BᵀdB`, `G·g·Gᵀ`) is laid out as rows of
//! `n²` *taps* — one value per position of the `n×n` transformed tile.
//! The taps have wildly different dynamic ranges (the corner taps of the
//! Cook-Toom transforms amplify far more than the center ones), so one
//! per-tensor scale wastes most of the integer grid on the quiet taps.
//! Tap-Wise Quantization (Andri et al. 2022) assigns every tap position
//! its own scale — and optionally its own bit-width — which is what makes
//! 4×4-tile INT8 Winograd viable.
//!
//! [`TapQuant`] is the calibration state for one such quantization site:
//! a per-tap range observer (the tap-wise analogue of [`Observer`]) plus
//! optional per-tap bit-width overrides. [`TapPolicy`] selects between
//! the classic per-tensor scheme and the tap-wise one.

use wa_tensor::Tensor;

use crate::bitwidth::BitWidth;
use crate::observer::ObserverMode;

/// How the Winograd-domain sites (`BᵀdB`, `G·g·Gᵀ`) of a layer are
/// quantized.
///
/// `PerLayer` is the paper's original scheme: one scale per site, derived
/// from the whole tensor's range. `PerTap` gives each of the `n²` tap
/// positions of the transformed tile its own scale (and optionally its
/// own bit-width) — see the module-level docs above.
///
/// A `PerTap` site whose taps all share one range is **bit-for-bit
/// identical** to the `PerLayer` site at that range; the schemes only
/// diverge once calibration observes different ranges per tap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum TapPolicy {
    /// One scale per quantization site (per-tensor symmetric uniform).
    #[default]
    PerLayer,
    /// One scale (and optionally one bit-width) per tap position of the
    /// `n×n` transformed tile. Ignored by layers with no Winograd domain
    /// (im2row convolutions, linear layers).
    PerTap,
}

impl std::fmt::Display for TapPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TapPolicy::PerLayer => write!(f, "per-layer"),
            TapPolicy::PerTap => write!(f, "per-tap"),
        }
    }
}

/// Error returned when parsing a [`TapPolicy`] from its display form.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTapPolicyError(pub String);

impl std::fmt::Display for ParseTapPolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unrecognized transform-quantization policy `{}` (expected `per-layer` or `per-tap`)",
            self.0
        )
    }
}

impl std::error::Error for ParseTapPolicyError {}

impl std::str::FromStr for TapPolicy {
    type Err = ParseTapPolicyError;

    /// Parses the [`Display`](std::fmt::Display) form back (`"per-layer"`,
    /// `"per-tap"`) — the encoding `ModelSpec` JSON documents use.
    /// Case-insensitive.
    fn from_str(s: &str) -> Result<TapPolicy, ParseTapPolicyError> {
        match s.trim().to_ascii_lowercase().as_str() {
            "per-layer" => Ok(TapPolicy::PerLayer),
            "per-tap" => Ok(TapPolicy::PerTap),
            _ => Err(ParseTapPolicyError(s.to_string())),
        }
    }
}

/// Per-tap calibration state for one Winograd-domain quantization site.
///
/// Tracks the symmetric dynamic range (max |x|) of every tap position of
/// the `n×n` transformed tile — the vectorized analogue of [`Observer`](crate::Observer),
/// with the same [`ObserverMode`] aggregation and freeze semantics — and
/// optionally overrides the site's bit-width per tap.
///
/// # Example
///
/// ```
/// use wa_quant::{BitWidth, TapQuant};
/// use wa_tensor::Tensor;
///
/// let mut tq = TapQuant::new(2); // F(1, 2)-sized 2×2 tile: 4 taps
/// // two tile rows, taps laid out along the last axis
/// let rows = Tensor::from_vec(vec![1.0, -2.0, 0.5, 4.0, -0.5, 1.0, 0.25, -8.0], &[2, 4]);
/// tq.observe(&rows);
/// assert_eq!(tq.ranges(), &[1.0, 2.0, 0.5, 8.0]);
/// let scales = tq.scales(BitWidth::INT8);
/// assert!((scales[3] - 8.0 / 127.0).abs() < 1e-6);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct TapQuant {
    /// Tile side `n`; the grid has `n²` taps.
    n: usize,
    mode: ObserverMode,
    /// Per-tap range estimate (max |x| aggregated per `mode`).
    ranges: Vec<f32>,
    /// Per-tap bit-width overrides; `None` means every tap uses the
    /// site's configured bit-width.
    bits: Option<Vec<BitWidth>>,
    seen: u64,
    frozen: bool,
}

impl TapQuant {
    /// Creates tap-wise calibration state for an `n×n` transformed tile
    /// with the default [`ObserverMode`] and no bit-width overrides.
    pub fn new(n: usize) -> TapQuant {
        TapQuant::with_mode(n, ObserverMode::default())
    }

    /// Creates tap-wise calibration state with an explicit aggregation
    /// mode.
    pub fn with_mode(n: usize, mode: ObserverMode) -> TapQuant {
        TapQuant {
            n,
            mode,
            ranges: vec![0.0; n * n],
            bits: None,
            seen: 0,
            frozen: false,
        }
    }

    /// Tile side `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of tap positions (`n²`).
    pub fn taps(&self) -> usize {
        self.n * self.n
    }

    /// Updates every tap's range estimate from a Winograd-domain tensor
    /// whose taps are laid out along the last axis (any `[…, n²]` row
    /// layout: the element at flat index `i` belongs to tap `i % n²`).
    /// Frozen state is left unchanged, as for [`Observer`](crate::Observer).
    ///
    /// # Panics
    ///
    /// Panics if the tensor's length is not a multiple of `n²`.
    pub fn observe(&mut self, x: &Tensor) {
        if self.frozen {
            return;
        }
        let taps = self.taps();
        assert!(
            x.len().is_multiple_of(taps),
            "tap observation needs a [.., {}] layout, got {} elements",
            taps,
            x.len()
        );
        let mut batch_max = vec![0.0f32; taps];
        for (i, &v) in x.data().iter().enumerate() {
            let t = i % taps;
            batch_max[t] = batch_max[t].max(v.abs());
        }
        for (r, m) in self.ranges.iter_mut().zip(&batch_max) {
            *r = match self.mode {
                ObserverMode::RunningMax => r.max(*m),
                ObserverMode::Ema { momentum } => {
                    if self.seen == 0 {
                        *m
                    } else {
                        momentum * *r + (1.0 - momentum) * *m
                    }
                }
            };
        }
        self.seen += 1;
    }

    /// The per-tap range estimates (max |x|). All zeros until the first
    /// observation.
    pub fn ranges(&self) -> &[f32] {
        &self.ranges
    }

    /// Restores calibrated ranges (checkpoint import). Marks the state as
    /// observed so subsequent quantization uses these ranges verbatim.
    ///
    /// # Errors
    ///
    /// Returns the expected tap count if `ranges.len() != n²`.
    pub fn set_ranges(&mut self, ranges: &[f32]) -> Result<(), usize> {
        if ranges.len() != self.taps() {
            return Err(self.taps());
        }
        self.ranges.copy_from_slice(ranges);
        self.seen = self.seen.max(1);
        Ok(())
    }

    /// Sets every tap's range to one value — the uniform-tap state that
    /// is bit-for-bit equivalent to a per-layer observer at `range`.
    pub fn set_uniform_range(&mut self, range: f32) {
        self.ranges.fill(range);
        self.seen = self.seen.max(1);
    }

    /// Restores the full observation state (checkpoint import).
    pub fn restore(&mut self, seen: u64, frozen: bool) {
        self.seen = seen;
        self.frozen = frozen;
    }

    /// The per-tap bit-width overrides, if any.
    pub fn bit_overrides(&self) -> Option<&[BitWidth]> {
        self.bits.as_deref()
    }

    /// Installs (or clears, with `None`) per-tap bit-width overrides —
    /// the mixed-precision knob a wiNAS search can turn per tap.
    ///
    /// # Errors
    ///
    /// Returns the expected tap count if an override vector's length is
    /// not `n²`.
    pub fn set_bit_overrides(&mut self, bits: Option<Vec<BitWidth>>) -> Result<(), usize> {
        if let Some(b) = &bits {
            if b.len() != self.taps() {
                return Err(self.taps());
            }
        }
        self.bits = bits;
        Ok(())
    }

    /// The effective per-tap bit-widths: the overrides if installed,
    /// otherwise `default` for every tap.
    pub fn effective_bits(&self, default: BitWidth) -> Vec<BitWidth> {
        match &self.bits {
            Some(b) => b.clone(),
            None => vec![default; self.taps()],
        }
    }

    /// Per-tap quantization scales at the effective bit-widths:
    /// `range[t] / qmax(bits[t])`, with the same tiny-positive fallback
    /// as [`Observer::scale`](crate::Observer::scale) for un-warmed taps. FP32 taps get scale
    /// `1.0` (unused — the quantizer passes them through).
    pub fn scales(&self, default: BitWidth) -> Vec<f32> {
        self.scales_for(&self.effective_bits(default))
    }

    /// [`TapQuant::scales`] against an already-materialized per-tap
    /// bit-width vector — callers that also need the bit-widths (the
    /// quantizer takes both) compute [`TapQuant::effective_bits`] once
    /// and reuse it here.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != n²`.
    pub fn scales_for(&self, bits: &[BitWidth]) -> Vec<f32> {
        assert_eq!(bits.len(), self.taps(), "one bit-width per tap");
        self.ranges
            .iter()
            .zip(bits)
            .map(|(&r, &b)| {
                if b.is_float() {
                    1.0
                } else if r <= 0.0 {
                    f32::MIN_POSITIVE
                } else {
                    r / b.qmax() as f32
                }
            })
            .collect()
    }

    /// Number of batches observed so far.
    pub fn observations(&self) -> u64 {
        self.seen
    }

    /// Stops range updates (evaluation mode).
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Resumes range updates (training mode).
    pub fn unfreeze(&mut self) {
        self.frozen = false;
    }

    /// Whether the state is frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Resets ranges and observation count, keeping bit-width overrides
    /// (they are configuration, not statistics).
    pub fn reset(&mut self) {
        self.ranges.fill(0.0);
        self.seen = 0;
        self.frozen = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::{fake_quant_scale, fake_quant_taps};

    fn rows(data: Vec<f32>, taps: usize) -> Tensor {
        let r = data.len() / taps;
        Tensor::from_vec(data, &[r, taps])
    }

    #[test]
    fn policy_display_roundtrips() {
        for p in [TapPolicy::PerLayer, TapPolicy::PerTap] {
            assert_eq!(p.to_string().parse::<TapPolicy>().unwrap(), p);
        }
        assert!("per-channel".parse::<TapPolicy>().is_err());
        assert_eq!(TapPolicy::default(), TapPolicy::PerLayer);
    }

    #[test]
    fn observe_tracks_per_tap_maxima() {
        let mut tq = TapQuant::with_mode(2, ObserverMode::RunningMax);
        tq.observe(&rows(vec![1.0, -2.0, 0.5, 4.0], 4));
        tq.observe(&rows(vec![0.5, -3.0, 0.25, 1.0], 4));
        assert_eq!(tq.ranges(), &[1.0, 3.0, 0.5, 4.0]);
        assert_eq!(tq.observations(), 2);
    }

    #[test]
    fn ema_matches_scalar_observer_semantics() {
        let mut tq = TapQuant::with_mode(1, ObserverMode::Ema { momentum: 0.9 });
        tq.observe(&rows(vec![2.0], 1));
        tq.observe(&rows(vec![1.0], 1));
        assert!((tq.ranges()[0] - (0.9 * 2.0 + 0.1 * 1.0)).abs() < 1e-6);
    }

    #[test]
    fn freeze_and_reset() {
        let mut tq = TapQuant::new(2);
        tq.observe(&rows(vec![1.0; 4], 4));
        tq.freeze();
        tq.observe(&rows(vec![10.0; 4], 4));
        assert_eq!(tq.ranges(), &[1.0; 4]);
        tq.reset();
        assert_eq!(tq.ranges(), &[0.0; 4]);
        assert_eq!(tq.observations(), 0);
        assert!(!tq.is_frozen());
    }

    #[test]
    fn bit_overrides_validate_length() {
        let mut tq = TapQuant::new(2);
        assert_eq!(tq.set_bit_overrides(Some(vec![BitWidth::INT8; 3])), Err(4));
        tq.set_bit_overrides(Some(vec![
            BitWidth::INT8,
            BitWidth::INT16,
            BitWidth::FP32,
            BitWidth::INT8,
        ]))
        .unwrap();
        let eff = tq.effective_bits(BitWidth::INT8);
        assert_eq!(eff[1], BitWidth::INT16);
        tq.set_bit_overrides(None).unwrap();
        assert_eq!(tq.effective_bits(BitWidth::INT10), vec![BitWidth::INT10; 4]);
    }

    #[test]
    fn uniform_taps_are_bit_identical_to_per_tensor() {
        let mut tq = TapQuant::new(2);
        tq.set_uniform_range(1.27);
        let x = rows(vec![0.11, -0.52, 0.93, 1.5, -0.04, 0.66, -1.27, 0.3], 4);
        let per_tap = fake_quant_taps(
            &x,
            &tq.effective_bits(BitWidth::INT8),
            &tq.scales(BitWidth::INT8),
        );
        let per_tensor = fake_quant_scale(&x, BitWidth::INT8, 1.27 / 127.0);
        assert_eq!(per_tap.data(), per_tensor.data());
    }

    #[test]
    fn set_ranges_roundtrips() {
        let mut tq = TapQuant::new(2);
        assert_eq!(tq.set_ranges(&[1.0]), Err(4));
        tq.set_ranges(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(tq.ranges(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(tq.observations(), 1, "restored state counts as observed");
    }

    #[test]
    #[should_panic(expected = "tap observation")]
    fn misaligned_observation_panics() {
        let mut tq = TapQuant::new(2);
        tq.observe(&Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]));
    }
}
