//! Dynamic-range observers.

use wa_tensor::Tensor;

use crate::bitwidth::BitWidth;

/// How an [`Observer`] aggregates the ranges it sees.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ObserverMode {
    /// Running maximum of |x| over all observations (never shrinks).
    RunningMax,
    /// Exponential moving average of the per-batch max |x| — the "moving
    /// averages" the paper warms up before post-training swaps (Table 1).
    Ema {
        /// EMA momentum in `(0, 1)`; the running value keeps `momentum`
        /// of its history each step.
        momentum: f32,
    },
}

impl Default for ObserverMode {
    fn default() -> Self {
        ObserverMode::Ema { momentum: 0.99 }
    }
}

/// Tracks the symmetric dynamic range (max |x|) of a tensor stream and
/// turns it into a quantization scale.
///
/// One observer is attached to every quantization point `Qx` of the
/// Winograd-aware pipeline (weights, activations, `Gg`, `GgGᵀ`, `Bᵀd`,
/// `BᵀdB`, Hadamard product, `Aᵀy`, `AᵀyA` — Figure 2 of the paper).
///
/// # Example
///
/// ```
/// use wa_quant::{BitWidth, Observer, ObserverMode};
/// use wa_tensor::Tensor;
///
/// let mut obs = Observer::new(ObserverMode::RunningMax);
/// obs.observe(&Tensor::from_vec(vec![0.5, -2.0], &[2]));
/// assert_eq!(obs.range(), 2.0);
/// assert!((obs.scale(BitWidth::INT8) - 2.0 / 127.0).abs() < 1e-7);
/// ```
#[derive(Clone, Debug)]
pub struct Observer {
    mode: ObserverMode,
    running: f32,
    seen: u64,
    frozen: bool,
}

impl Default for Observer {
    fn default() -> Self {
        Observer::new(ObserverMode::default())
    }
}

impl Observer {
    /// Creates an observer with the given aggregation mode.
    pub fn new(mode: ObserverMode) -> Self {
        Observer {
            mode,
            running: 0.0,
            seen: 0,
            frozen: false,
        }
    }

    /// Updates the range estimate with a new tensor and returns the current
    /// range. Frozen observers return the stored range unchanged.
    pub fn observe(&mut self, x: &Tensor) -> f32 {
        if self.frozen {
            return self.running;
        }
        let batch_max = x.max_abs();
        self.running = match self.mode {
            ObserverMode::RunningMax => self.running.max(batch_max),
            ObserverMode::Ema { momentum } => {
                if self.seen == 0 {
                    batch_max
                } else {
                    momentum * self.running + (1.0 - momentum) * batch_max
                }
            }
        };
        self.seen += 1;
        self.running
    }

    /// The current range estimate (max |x|). Zero until first observation.
    pub fn range(&self) -> f32 {
        self.running
    }

    /// Number of batches observed so far.
    pub fn observations(&self) -> u64 {
        self.seen
    }

    /// Stops range updates (evaluation mode).
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Resumes range updates (training mode).
    pub fn unfreeze(&mut self) {
        self.frozen = false;
    }

    /// Whether the observer is frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Restores a calibrated state (checkpoint import): the stored range,
    /// observation count and frozen flag, keeping the aggregation mode.
    pub fn restore(&mut self, range: f32, seen: u64, frozen: bool) {
        self.running = range;
        self.seen = seen;
        self.frozen = frozen;
    }

    /// Resets the observer to its initial empty state.
    pub fn reset(&mut self) {
        self.running = 0.0;
        self.seen = 0;
        self.frozen = false;
    }

    /// Quantization scale for the given precision: `range / qmax`.
    ///
    /// Returns a tiny positive scale before any observation so that
    /// quantizing with an un-warmed observer is safe (everything maps to
    /// zero) rather than a division by zero.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is FP32 — FP32 has no scale; callers skip
    /// quantization entirely at float precision.
    pub fn scale(&self, bits: BitWidth) -> f32 {
        let qmax = bits.qmax() as f32;
        if self.running <= 0.0 {
            f32::MIN_POSITIVE
        } else {
            self.running / qmax
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_max_never_shrinks() {
        let mut obs = Observer::new(ObserverMode::RunningMax);
        obs.observe(&Tensor::from_vec(vec![3.0], &[1]));
        obs.observe(&Tensor::from_vec(vec![1.0], &[1]));
        assert_eq!(obs.range(), 3.0);
    }

    #[test]
    fn ema_first_observation_initializes() {
        let mut obs = Observer::new(ObserverMode::Ema { momentum: 0.9 });
        obs.observe(&Tensor::from_vec(vec![2.0], &[1]));
        assert_eq!(obs.range(), 2.0);
        obs.observe(&Tensor::from_vec(vec![0.0, 1.0], &[2]));
        assert!((obs.range() - (0.9 * 2.0 + 0.1 * 1.0)).abs() < 1e-6);
    }

    #[test]
    fn freeze_stops_updates() {
        let mut obs = Observer::new(ObserverMode::RunningMax);
        obs.observe(&Tensor::from_vec(vec![1.0], &[1]));
        obs.freeze();
        obs.observe(&Tensor::from_vec(vec![10.0], &[1]));
        assert_eq!(obs.range(), 1.0);
        obs.unfreeze();
        obs.observe(&Tensor::from_vec(vec![10.0], &[1]));
        assert_eq!(obs.range(), 10.0);
    }

    #[test]
    fn unwarmed_scale_is_tiny_but_positive() {
        let obs = Observer::default();
        let s = obs.scale(BitWidth::INT8);
        assert!(s > 0.0 && s < 1e-30);
    }

    #[test]
    fn scale_divides_by_qmax() {
        let mut obs = Observer::new(ObserverMode::RunningMax);
        obs.observe(&Tensor::from_vec(vec![-12.7], &[1]));
        assert!((obs.scale(BitWidth::INT8) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn reset_clears_state() {
        let mut obs = Observer::default();
        obs.observe(&Tensor::from_vec(vec![5.0], &[1]));
        obs.freeze();
        obs.reset();
        assert_eq!(obs.range(), 0.0);
        assert_eq!(obs.observations(), 0);
        assert!(!obs.is_frozen());
    }
}
