//! Regression suite for the packed/threaded integer GEMM
//! (`gemm_i8` / `gemm_i8_batched`) on shapes that do not divide evenly
//! into its internal blocking:
//!
//! * odd `M` exercises the register-tile remainder rows,
//! * odd `N`/`K` exercise the zero-padded B-panel edges, the `pmaddwd`
//!   odd-`k` pad lane and the K-panel split,
//! * `M·N·K` above the parallel threshold exercises the
//!   `std::thread::scope` row split with a ragged final chunk,
//! * thread caps around `M` exercise the split boundaries.
//!
//! Integer arithmetic is exact and order-independent, so — unlike the
//! f32 suite, which needs an accumulation-order argument — **every**
//! comparison here is plain `assert_eq!` against a naive `i32` triple
//! loop, for every shape, transpose flag and worker count.

use wa_tensor::{gemm_i8, gemm_i8_batched, with_gemm_thread_cap, SeededRng, Transpose};

fn rand_i8(len: usize, seed: u64) -> Vec<i8> {
    let mut rng = SeededRng::new(seed);
    (0..len).map(|_| rng.uniform(-127.0, 128.0) as i8).collect()
}

/// Naive i32 triple loop over the logical (transpose-resolved) operands.
fn naive_i32(
    a: &[i8],
    ta: Transpose,
    b: &[i8],
    tb: Transpose,
    m: usize,
    k: usize,
    n: usize,
) -> Vec<i32> {
    let at = |i: usize, p: usize| match ta {
        Transpose::No => a[i * k + p] as i32,
        Transpose::Yes => a[p * m + i] as i32,
    };
    let bt = |p: usize, j: usize| match tb {
        Transpose::No => b[p * n + j] as i32,
        Transpose::Yes => b[j * k + p] as i32,
    };
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0i32;
            for p in 0..k {
                acc += at(i, p) * bt(p, j);
            }
            out[i * n + j] = acc;
        }
    }
    out
}

fn check(m: usize, k: usize, n: usize, ta: Transpose, tb: Transpose, seed: u64) {
    let (ar, ac) = match ta {
        Transpose::No => (m, k),
        Transpose::Yes => (k, m),
    };
    let (br, bc) = match tb {
        Transpose::No => (k, n),
        Transpose::Yes => (n, k),
    };
    let a = rand_i8(ar * ac, seed);
    let b = rand_i8(br * bc, seed + 1);
    let want = naive_i32(&a, ta, &b, tb, m, k, n);
    let mut got = vec![0i32; m * n];
    gemm_i8(&a, ta, &b, tb, m, k, n, &mut got);
    assert_eq!(
        got, want,
        "gemm_i8 {m}x{k}x{n} ta={ta:?} tb={tb:?} diverged from the naive i32 loop"
    );
}

#[test]
fn odd_shapes_exact() {
    // every M/N/K odd or prime, including degenerate 1-extent cases
    for &(m, k, n) in &[
        (1usize, 1usize, 1usize),
        (1, 7, 1),
        (3, 1, 5),
        (5, 3, 9),   // N > NR with a ragged last panel
        (7, 11, 13), // everything prime
        (9, 17, 8),  // N exactly one panel
        (13, 5, 23),
        (31, 29, 37),
    ] {
        check(m, k, n, Transpose::No, Transpose::No, 42);
    }
}

#[test]
fn transpose_cases_exact() {
    for ta in [Transpose::No, Transpose::Yes] {
        for tb in [Transpose::No, Transpose::Yes] {
            check(17, 9, 21, ta, tb, 7);
            check(4, 8, 8, ta, tb, 8); // exact tile multiples
            check(33, 64, 15, ta, tb, 9);
        }
    }
}

#[test]
fn register_tile_remainders_exact() {
    // MR = 4: remainder rows 1, 2, 3 below and above a full tile
    for m in 1..=9 {
        check(m, 19, 11, Transpose::No, Transpose::No, 100 + m as u64);
    }
}

#[test]
fn k_panel_split_exact() {
    // KC = 512 (i16 lanes): straddle the K-panel boundary, where the
    // second panel accumulates onto the stored partial
    for &k in &[511usize, 512, 513, 1025] {
        check(5, k, 9, Transpose::No, Transpose::No, k as u64);
    }
}

#[test]
fn worker_count_boundaries_exact() {
    // big enough to cross the parallel threshold; M deliberately not a
    // multiple of typical worker counts
    let (m, k, n) = (131usize, 67, 63);
    let a = rand_i8(m * k, 1);
    let b = rand_i8(k * n, 2);
    let want = naive_i32(&a, Transpose::No, &b, Transpose::No, m, k, n);
    for cap in [1usize, 2, 3, 4, 7, m - 1, m, m + 1] {
        let mut got = vec![0i32; m * n];
        with_gemm_thread_cap(cap, || {
            gemm_i8(&a, Transpose::No, &b, Transpose::No, m, k, n, &mut got)
        });
        assert_eq!(got, want, "worker cap {cap} changed the result");
    }
}

#[test]
fn batched_matches_per_item_and_naive() {
    let (batch, m, k, n) = (7usize, 5, 9, 11);
    let a = rand_i8(batch * m * k, 3);
    let b = rand_i8(batch * k * n, 4);
    let mut got = vec![0i32; batch * m * n];
    gemm_i8_batched(&a, &b, &mut got, batch, m, k, n);
    for s in 0..batch {
        let want = naive_i32(
            &a[s * m * k..(s + 1) * m * k],
            Transpose::No,
            &b[s * k * n..(s + 1) * k * n],
            Transpose::No,
            m,
            k,
            n,
        );
        assert_eq!(&got[s * m * n..(s + 1) * m * n], &want[..], "item {s}");
    }
}

#[test]
fn batched_worker_split_exact() {
    // batch·m·n·k over the threshold so the batch splits across threads
    let (batch, m, k, n) = (16usize, 24, 24, 32);
    let a = rand_i8(batch * m * k, 5);
    let b = rand_i8(batch * k * n, 6);
    let mut par = vec![0i32; batch * m * n];
    gemm_i8_batched(&a, &b, &mut par, batch, m, k, n);
    for cap in [1usize, 2, 3, batch - 1, batch, batch + 1] {
        let mut capped = vec![0i32; batch * m * n];
        with_gemm_thread_cap(cap, || gemm_i8_batched(&a, &b, &mut capped, batch, m, k, n));
        assert_eq!(
            par, capped,
            "batch split under cap {cap} changed an element"
        );
    }
}

#[test]
fn saturating_inputs_exact() {
    // all-extreme operands: the i16-widened pmaddwd pair sum peaks at
    // 2·127·128 < 2^15·2, still exact in i32
    let (m, k, n) = (6usize, 33, 10);
    let a = vec![-128i8; m * k];
    let b = vec![127i8; k * n];
    let want = naive_i32(&a, Transpose::No, &b, Transpose::No, m, k, n);
    let mut got = vec![0i32; m * n];
    gemm_i8(&a, Transpose::No, &b, Transpose::No, m, k, n, &mut got);
    assert_eq!(got, want);
}
