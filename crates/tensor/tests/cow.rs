//! Copy-on-write aliasing contract of [`Tensor`] storage, pinned by a
//! deterministic seeded sweep:
//!
//! * clones (and reshapes) alias one buffer — pointer equality via
//!   [`Tensor::data_ptr`] / [`Tensor::ptr_eq`];
//! * mutating a clone detaches it and never perturbs the original, for
//!   every in-place entry point (`data_mut`, `map_in_place`, `at_mut`,
//!   `add_assign`, `add_scaled_assign`);
//! * the [`cow_detach_bytes`] counter advances by exactly the detached
//!   buffer size on a shared write and not at all on a unique write or a
//!   deliberate [`Tensor::deep_clone`].
//!
//! Counter-delta tests are serialized behind one mutex: the tally is
//! process-global and the test harness runs tests on parallel threads.

use std::sync::{Mutex, MutexGuard, OnceLock};

use wa_tensor::{cow_detach_bytes, SeededRng, Tensor};

/// Serializes tests that assert exact [`cow_detach_bytes`] deltas.
fn counter_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .expect("counter lock poisoned")
}

const SHAPES: [&[usize]; 5] = [&[1], &[7], &[3, 5], &[2, 3, 4], &[2, 4, 6, 6]];

#[test]
fn seeded_sweep_clones_alias_and_detach_on_write() {
    let _guard = counter_lock(); // this test detaches; keep windows clean
    let mut rng = SeededRng::new(0xC0);
    for (i, shape) in SHAPES.iter().enumerate() {
        let original = rng.uniform_tensor(shape, -2.0, 2.0);
        let snapshot = original.deep_clone();

        // (a) clones alias the same buffer
        let mut clone = original.clone();
        assert!(clone.ptr_eq(&original), "shape {shape:?}: clone must alias");
        assert_eq!(clone.data_ptr(), original.data_ptr());
        let reshaped = original.reshape(&[original.len()]);
        assert!(
            reshaped.ptr_eq(&original),
            "shape {shape:?}: reshape must alias"
        );

        // (b) mutating the clone detaches it and never perturbs the
        // original
        let idx = i % original.len();
        clone.data_mut()[idx] += 1.0;
        assert!(
            !clone.ptr_eq(&original),
            "shape {shape:?}: write must detach"
        );
        assert_eq!(
            original, snapshot,
            "shape {shape:?}: original perturbed by a clone write"
        );
        assert_eq!(clone.data()[idx], snapshot.data()[idx] + 1.0);

        // the detached clone and the original now evolve independently
        clone.map_in_place(|v| v * 2.0);
        assert_eq!(original, snapshot);
    }
}

#[test]
fn every_in_place_entry_point_detaches() {
    let _guard = counter_lock(); // this test detaches; keep windows clean
    let mut rng = SeededRng::new(0xC1);
    let original = rng.uniform_tensor(&[4, 3], -1.0, 1.0);
    let other = rng.uniform_tensor(&[4, 3], -1.0, 1.0);
    let snapshot = original.deep_clone();

    type Mutation = Box<dyn Fn(&mut Tensor)>;
    let mutations: Vec<Mutation> = vec![
        Box::new(|t: &mut Tensor| t.data_mut()[0] = 42.0),
        Box::new(|t: &mut Tensor| t.map_in_place(|v| v + 1.0)),
        Box::new(|t: &mut Tensor| *t.at_mut(&[1, 2]) = -3.0),
        Box::new({
            let other = other.clone();
            move |t: &mut Tensor| t.add_assign(&other)
        }),
        Box::new({
            let other = other.clone();
            move |t: &mut Tensor| t.add_scaled_assign(&other, 0.5)
        }),
        Box::new(|t: &mut Tensor| t.reshape_in_place(&[3, 4])),
    ];
    for (i, mutate) in mutations.iter().enumerate() {
        let mut clone = original.clone();
        assert!(clone.ptr_eq(&original));
        mutate(&mut clone);
        assert_eq!(
            original, snapshot,
            "mutation #{i} leaked through to the original"
        );
    }
    // reshape_in_place only rewrites the shape vector: the buffer may
    // stay shared, but the original's shape must be untouched
    assert_eq!(original.shape(), &[4, 3]);
}

#[test]
fn detach_counter_advances_only_on_shared_writes() {
    let _guard = counter_lock();
    let mut rng = SeededRng::new(0xC2);

    for shape in SHAPES {
        let original = rng.uniform_tensor(shape, -1.0, 1.0);
        let bytes = (original.len() * std::mem::size_of::<f32>()) as u64;

        // unique writes are free
        let mut unique = original.deep_clone();
        let before = cow_detach_bytes();
        unique.data_mut()[0] = 1.0;
        assert_eq!(
            cow_detach_bytes() - before,
            0,
            "shape {shape:?}: sole owner must not copy"
        );

        // a shared write pays exactly one buffer copy
        let mut shared = original.clone();
        let before = cow_detach_bytes();
        shared.data_mut()[0] = 1.0;
        assert_eq!(
            cow_detach_bytes() - before,
            bytes,
            "shape {shape:?}: shared write must copy the buffer once"
        );

        // the now-detached tensor writes for free again
        let before = cow_detach_bytes();
        shared.map_in_place(|v| v + 1.0);
        assert_eq!(cow_detach_bytes() - before, 0);
    }
}

#[test]
fn deliberate_copies_are_not_counted() {
    let _guard = counter_lock();
    let mut rng = SeededRng::new(0xC3);
    let t = rng.uniform_tensor(&[16], -1.0, 1.0);
    let alias = t.clone();

    let before = cow_detach_bytes();
    let d = t.deep_clone();
    let v = t.data().to_vec();
    assert_eq!(
        cow_detach_bytes() - before,
        0,
        "eager copies must not count as COW detaches"
    );
    assert_eq!(d, t);
    assert_eq!(v, t.data());
    drop(alias);
}

#[test]
fn into_vec_copies_only_when_shared() {
    let _guard = counter_lock();
    let t = Tensor::from_fn(&[32], |i| i as f32);

    // sole owner: the buffer is moved out, no copy
    let before = cow_detach_bytes();
    let v = t.deep_clone().into_vec();
    assert_eq!(cow_detach_bytes() - before, 0);
    assert_eq!(v.len(), 32);

    // shared: the alias keeps the buffer, into_vec pays one copy
    let alias = t.clone();
    let before = cow_detach_bytes();
    let v = t.into_vec();
    assert_eq!(cow_detach_bytes() - before, 32 * 4);
    assert_eq!(v, alias.data());
}

#[test]
fn read_only_pipeline_performs_zero_detaches() {
    // reads, clones, reshapes, slices and fresh-allocation math over a
    // shared tensor — the whole read-only repertoire the inference path
    // uses — must never advance the detach counter
    let _guard = counter_lock();
    let mut rng = SeededRng::new(0xC4);
    let t = rng.uniform_tensor(&[6, 8], -1.0, 1.0);
    let aliases: Vec<Tensor> = (0..4).map(|_| t.clone()).collect();

    let before = cow_detach_bytes();
    let r = t.reshape(&[8, 6]);
    let _ = r.transpose();
    let _ = t.slice_dim0(1, 4);
    let _ = t.add(&aliases[0]);
    let _ = t.scale(2.0);
    let _ = t.matmul(&t.reshape(&[8, 6]));
    let _ = t.sum();
    let _ = t.min_max();
    assert_eq!(
        cow_detach_bytes() - before,
        0,
        "read-only ops must not detach"
    );
    assert!(aliases.iter().all(|a| a.ptr_eq(&t)));
}
