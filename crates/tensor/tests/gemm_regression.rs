//! Regression suite for the packed/threaded GEMM on shapes that do not
//! divide evenly into its internal blocking:
//!
//! * odd `M` exercises the register-tile remainder rows (which run the
//!   same const-generic micro-kernel as full tiles),
//! * odd `N`/`K` exercise the zero-padded B-panel edges and the K-panel
//!   split,
//! * `M·N·K` above the parallel threshold exercises the
//!   `std::thread::scope` row split with a ragged final chunk,
//! * thread caps around `M` exercise the split boundaries (`M` not a
//!   multiple of the worker count, `M` smaller than the worker count).
//!
//! The kernel accumulates each output element over `k` in strictly
//! ascending order for **every** shape — the K-panel loop reads the
//! partial result back instead of reassociating — so every comparison
//! against the naive f32 triple loop demands *exact* equality.

use wa_tensor::{gemm, SeededRng, Tensor, Transpose};

fn rand_mat(r: usize, c: usize, seed: u64) -> Tensor {
    let mut rng = SeededRng::new(seed);
    Tensor::from_fn(&[r, c], |_| rng.uniform(-1.0, 1.0))
}

/// Naive f32 triple loop — accumulation order identical to the packed
/// kernel for every shape.
fn naive_f32(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dim(0), a.dim(1));
    let n = b.dim(1);
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.data()[i * k + p] * b.data()[p * n + j];
            }
            *out.at_mut(&[i, j]) = acc;
        }
    }
    out
}

/// f64 reference for cases where the blocked kernel's K-panel split
/// changes the f32 accumulation order.
fn naive_f64(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dim(0), a.dim(1));
    let n = b.dim(1);
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc += (a.data()[i * k + p] as f64) * (b.data()[p * n + j] as f64);
            }
            *out.at_mut(&[i, j]) = acc as f32;
        }
    }
    out
}

#[test]
fn odd_shapes_match_naive_exactly_below_parallel_threshold() {
    // all-odd M/N/K around the 4-row panel boundary
    for (m, k, n) in [(5, 9, 7), (7, 3, 5), (9, 11, 13), (3, 255, 3), (17, 31, 29)] {
        let a = rand_mat(m, k, 1000 + (m * k) as u64);
        let b = rand_mat(k, n, 2000 + (k * n) as u64);
        let got = gemm(&a, Transpose::No, &b, Transpose::No);
        let want = naive_f32(&a, &b);
        assert_eq!(
            got.data(),
            want.data(),
            "blocked GEMM must match the naive f32 loop exactly for \
             {m}x{k}x{n} (k fits one K-panel)"
        );
    }
}

#[test]
fn odd_shapes_match_naive_exactly_on_the_threaded_path() {
    // 65*63*67 = 274,365 result-work units > 64^3: the threaded split
    // engages, with a ragged final row chunk (65 rows over the workers).
    let (m, k, n) = (65usize, 63, 67);
    assert!(m * k * n >= 64 * 64 * 64, "shape must trigger threading");
    let a = rand_mat(m, k, 3);
    let b = rand_mat(k, n, 4);
    let got = gemm(&a, Transpose::No, &b, Transpose::No);
    let want = naive_f32(&a, &b);
    assert_eq!(
        got.data(),
        want.data(),
        "threaded row split must not change any output element"
    );
}

#[test]
fn odd_k_above_panel_size_is_still_exact_and_near_f64() {
    // k = 300 splits into K-panels 256 + 44. The kernel reads its partial
    // result back between panels instead of reassociating, so even the
    // K-split path stays bit-identical to the naive f32 loop — and the
    // f64 reference bounds the genuine rounding of that shared order.
    let (m, k, n) = (7usize, 300, 5);
    let a = rand_mat(m, k, 5);
    let b = rand_mat(k, n, 6);
    let got = gemm(&a, Transpose::No, &b, Transpose::No);
    assert_eq!(
        got.data(),
        naive_f32(&a, &b).data(),
        "the K-panel split must not reassociate the accumulation"
    );
    let want = naive_f64(&a, &b);
    for (x, y) in got.data().iter().zip(want.data()) {
        assert!(
            (x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs())),
            "{x} vs {y}"
        );
    }
}

#[test]
fn row_split_boundaries_are_exact_for_any_worker_count() {
    // M chosen so that common worker counts leave a ragged final chunk
    // (67 = 4·16 + 3 rows) and M·N·K crosses the parallel threshold. The
    // cap bounds the split at w workers (the machine's core count may
    // bound it lower still); every variant must agree with the naive
    // loop exactly, because the split assigns whole output rows.
    let (m, k, n) = (67usize, 64, 70);
    assert!(m * k * n >= 64 * 64 * 64, "shape must trigger threading");
    let a = rand_mat(m, k, 21);
    let b = rand_mat(k, n, 22);
    let want = naive_f32(&a, &b);
    for workers in [1usize, 2, 3, 5, 8, 64] {
        let got =
            wa_tensor::with_gemm_thread_cap(workers, || gemm(&a, Transpose::No, &b, Transpose::No));
        assert_eq!(
            got.data(),
            want.data(),
            "row split with a cap of {workers} workers changed an element"
        );
    }
}

#[test]
fn more_workers_than_rows_is_exact() {
    // M < the permitted worker count: the split must simply spawn fewer
    // workers (MR-aligned row chunks), never hand a worker zero rows or
    // split a row. K is large so the per-row work crosses the threshold.
    let (m, k, n) = (3usize, 512, 200);
    assert!(m * k * n >= 64 * 64 * 64, "shape must trigger threading");
    let a = rand_mat(m, k, 31);
    let b = rand_mat(k, n, 32);
    let want = naive_f32(&a, &b);
    for workers in [2usize, 4, 16, 1024] {
        let got =
            wa_tensor::with_gemm_thread_cap(workers, || gemm(&a, Transpose::No, &b, Transpose::No));
        assert_eq!(
            got.data(),
            want.data(),
            "M={m} with a cap of {workers} workers changed an element"
        );
    }
}

#[test]
fn transpose_flags_on_odd_shapes_match_explicit_transpose() {
    let a = rand_mat(9, 5, 7); // aᵀ: [5, 9]
    let b = rand_mat(9, 7, 8);
    let got = gemm(&a, Transpose::Yes, &b, Transpose::No);
    let want = naive_f32(&a.transpose(), &b);
    assert_eq!(got.data(), want.data());

    let c = rand_mat(11, 9, 9); // cᵀ: [9, 11]
    let got2 = gemm(&b, Transpose::Yes, &c, Transpose::Yes); // [7,9]·[9,11]
    let want2 = naive_f32(&b.transpose(), &c.transpose());
    assert_eq!(got2.data(), want2.data());
}

#[test]
fn degenerate_single_row_and_column_shapes() {
    for (m, k, n) in [(1, 1, 1), (1, 7, 1), (3, 1, 5), (1, 5, 9)] {
        let a = rand_mat(m, k, 60 + m as u64);
        let b = rand_mat(k, n, 70 + n as u64);
        let got = gemm(&a, Transpose::No, &b, Transpose::No);
        let want = naive_f32(&a, &b);
        assert_eq!(got.data(), want.data(), "{m}x{k}x{n}");
    }
}
