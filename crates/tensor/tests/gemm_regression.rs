//! Regression suite for the blocked/threaded GEMM on shapes that do not
//! divide evenly into its internal blocking:
//!
//! * odd `M` exercises the 4-row micro-panel remainder path,
//! * odd `N`/`K` exercise the panel edges,
//! * `M·N·K` above the parallel threshold exercises the
//!   `std::thread::scope` row split with a ragged final chunk.
//!
//! The kernel accumulates each output element over `k` in the same order
//! as a naive f32 triple loop whenever `k` fits one K-panel (256), so
//! those comparisons demand *exact* equality; K-split cases compare
//! against an f64 reference with a tight tolerance.

use wa_tensor::{gemm, SeededRng, Tensor, Transpose};

fn rand_mat(r: usize, c: usize, seed: u64) -> Tensor {
    let mut rng = SeededRng::new(seed);
    Tensor::from_fn(&[r, c], |_| rng.uniform(-1.0, 1.0))
}

/// Naive f32 triple loop — accumulation order identical to the blocked
/// kernel for k <= 256.
fn naive_f32(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dim(0), a.dim(1));
    let n = b.dim(1);
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.data()[i * k + p] * b.data()[p * n + j];
            }
            *out.at_mut(&[i, j]) = acc;
        }
    }
    out
}

/// f64 reference for cases where the blocked kernel's K-panel split
/// changes the f32 accumulation order.
fn naive_f64(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.dim(0), a.dim(1));
    let n = b.dim(1);
    let mut out = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc += (a.data()[i * k + p] as f64) * (b.data()[p * n + j] as f64);
            }
            *out.at_mut(&[i, j]) = acc as f32;
        }
    }
    out
}

#[test]
fn odd_shapes_match_naive_exactly_below_parallel_threshold() {
    // all-odd M/N/K around the 4-row panel boundary
    for (m, k, n) in [(5, 9, 7), (7, 3, 5), (9, 11, 13), (3, 255, 3), (17, 31, 29)] {
        let a = rand_mat(m, k, 1000 + (m * k) as u64);
        let b = rand_mat(k, n, 2000 + (k * n) as u64);
        let got = gemm(&a, Transpose::No, &b, Transpose::No);
        let want = naive_f32(&a, &b);
        assert_eq!(
            got.data(),
            want.data(),
            "blocked GEMM must match the naive f32 loop exactly for \
             {m}x{k}x{n} (k fits one K-panel)"
        );
    }
}

#[test]
fn odd_shapes_match_naive_exactly_on_the_threaded_path() {
    // 65*63*67 = 274,365 result-work units > 64^3: the threaded split
    // engages, with a ragged final row chunk (65 rows over the workers).
    let (m, k, n) = (65usize, 63, 67);
    assert!(m * k * n >= 64 * 64 * 64, "shape must trigger threading");
    let a = rand_mat(m, k, 3);
    let b = rand_mat(k, n, 4);
    let got = gemm(&a, Transpose::No, &b, Transpose::No);
    let want = naive_f32(&a, &b);
    assert_eq!(
        got.data(),
        want.data(),
        "threaded row split must not change any output element"
    );
}

#[test]
fn odd_k_above_panel_size_matches_f64_reference() {
    // k = 300 splits into K-panels 256 + 44; compare to f64 with a
    // tolerance covering the reassociation.
    let (m, k, n) = (7usize, 300, 5);
    let a = rand_mat(m, k, 5);
    let b = rand_mat(k, n, 6);
    let got = gemm(&a, Transpose::No, &b, Transpose::No);
    let want = naive_f64(&a, &b);
    for (x, y) in got.data().iter().zip(want.data()) {
        assert!(
            (x - y).abs() <= 1e-4 * (1.0 + x.abs().max(y.abs())),
            "{x} vs {y}"
        );
    }
}

#[test]
fn transpose_flags_on_odd_shapes_match_explicit_transpose() {
    let a = rand_mat(9, 5, 7); // aᵀ: [5, 9]
    let b = rand_mat(9, 7, 8);
    let got = gemm(&a, Transpose::Yes, &b, Transpose::No);
    let want = naive_f32(&a.transpose(), &b);
    assert_eq!(got.data(), want.data());

    let c = rand_mat(11, 9, 9); // cᵀ: [9, 11]
    let got2 = gemm(&b, Transpose::Yes, &c, Transpose::Yes); // [7,9]·[9,11]
    let want2 = naive_f32(&b.transpose(), &c.transpose());
    assert_eq!(got2.data(), want2.data());
}

#[test]
fn degenerate_single_row_and_column_shapes() {
    for (m, k, n) in [(1, 1, 1), (1, 7, 1), (3, 1, 5), (1, 5, 9)] {
        let a = rand_mat(m, k, 60 + m as u64);
        let b = rand_mat(k, n, 70 + n as u64);
        let got = gemm(&a, Transpose::No, &b, Transpose::No);
        let want = naive_f32(&a, &b);
        assert_eq!(got.data(), want.data(), "{m}x{k}x{n}");
    }
}
