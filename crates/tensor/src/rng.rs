//! Deterministic random number generation for reproducible experiments.

use crate::tensor::Tensor;

/// A seeded, portable pseudo-random number generator.
///
/// Implements xoshiro256++ (Blackman & Vigna 2019) seeded through
/// SplitMix64, entirely in-crate, so every experiment in the workspace is
/// bit-for-bit reproducible across platforms with no external RNG
/// dependency (the stream of xoshiro256++ is fully specified).
///
/// # Example
///
/// ```
/// use wa_tensor::SeededRng;
///
/// let mut a = SeededRng::new(7);
/// let mut b = SeededRng::new(7);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Clone, Debug)]
pub struct SeededRng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeededRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SeededRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f32` in `[0, 1)` with full 24-bit mantissa resolution.
    fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Derives an independent child generator; useful for giving each
    /// layer/worker its own stream while keeping global determinism.
    pub fn fork(&mut self, salt: u64) -> SeededRng {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SeededRng::new(s)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "uniform requires lo < hi, got [{}, {})", lo, hi);
        self.unit_f32() * (hi - lo) + lo
    }

    /// Standard normal sample (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        loop {
            let u1: f32 = self.unit_f32();
            let u2: f32 = self.unit_f32();
            if u1 > f32::MIN_POSITIVE {
                let r = (-2.0 * u1.ln()).sqrt();
                return r * (2.0 * std::f32::consts::PI * u2).cos();
            }
        }
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        // Lemire-style rejection sampling keeps the draw unbiased.
        let n = n as u64;
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return (v % n) as usize;
            }
        }
    }

    /// Bernoulli sample with probability `p` of `true`.
    pub fn chance(&mut self, p: f32) -> bool {
        self.unit_f32() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Tensor of i.i.d. uniform values in `[lo, hi)`.
    pub fn uniform_tensor(&mut self, shape: &[usize], lo: f32, hi: f32) -> Tensor {
        Tensor::from_fn(shape, |_| self.uniform(lo, hi))
    }

    /// Tensor of i.i.d. normal values with the given std deviation.
    pub fn normal_tensor(&mut self, shape: &[usize], std: f32) -> Tensor {
        Tensor::from_fn(shape, |_| self.normal() * std)
    }

    /// Kaiming/He-normal initialisation for a conv weight
    /// `[c_out, c_in, kh, kw]` or linear weight `[out, in]`: std =
    /// √(2 / fan_in).
    ///
    /// # Panics
    ///
    /// Panics if `shape` has fewer than 2 dimensions.
    pub fn kaiming_tensor(&mut self, shape: &[usize]) -> Tensor {
        assert!(
            shape.len() >= 2,
            "kaiming init needs >= 2 dims, got {:?}",
            shape
        );
        let fan_in: usize = shape[1..].iter().product();
        let std = (2.0 / fan_in as f32).sqrt();
        self.normal_tensor(shape, std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed() {
        let mut a = SeededRng::new(123);
        let mut b = SeededRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.uniform(-1.0, 1.0), b.uniform(-1.0, 1.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let xs: Vec<f32> = (0..16).map(|_| a.uniform(0.0, 1.0)).collect();
        let ys: Vec<f32> = (0..16).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SeededRng::new(9);
        for _ in 0..1000 {
            let v = r.uniform(2.0, 3.0);
            assert!((2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = SeededRng::new(4);
        let n = 20_000;
        let xs: Vec<f32> = (0..n).map(|_| r.normal()).collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {}", mean);
        assert!((var - 1.0).abs() < 0.1, "var {}", var);
    }

    #[test]
    fn kaiming_std_tracks_fan_in() {
        let mut r = SeededRng::new(5);
        let w = r.kaiming_tensor(&[64, 32, 3, 3]);
        let fan_in = 32.0 * 9.0;
        let want = (2.0f32 / fan_in).sqrt();
        let std = (w.sq_norm() / w.len() as f64).sqrt() as f32;
        assert!((std - want).abs() < 0.2 * want, "std {} want {}", std, want);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SeededRng::new(6);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = SeededRng::new(10);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.uniform(0.0, 1.0), c2.uniform(0.0, 1.0));
    }
}
