//! # wa-tensor
//!
//! Dense row-major `f32` tensors and the numeric primitives that the rest of
//! the `winograd-aware` workspace is built on: a cache-blocked GEMM,
//! padding, `im2row`/`col2im` lowering for convolutions, and a deterministic
//! seeded RNG for reproducible experiments.
//!
//! The crate is deliberately small and dependency-light; it is the substrate
//! on which the `wa-winograd` kernels and the `wa-nn` autograd engine are
//! built. Shape mismatches are programming errors and panic with a
//! descriptive message (the convention used by `ndarray` and friends);
//! fallible *data* operations return [`Result`].
//!
//! # Example
//!
//! ```
//! use wa_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```

mod conv;
mod gemm;
mod gemm_i8;
pub mod json;
mod rng;
mod tensor;

pub use conv::{col2im, conv2d_direct, conv2d_direct_f64, im2row, pad_nchw, unpad_nchw, ConvShape};
pub use gemm::{gemm, gemm_batched, gemm_into, with_gemm_thread_cap, Transpose};
pub use gemm_i8::{gemm_i8, gemm_i8_batched, gemm_i8_prepacked, PackedAI8, PackedBI8};
pub use json::{Json, JsonError};
pub use rng::SeededRng;
pub use tensor::{cow_detach_bytes, Tensor};
