//! Convolution lowering primitives: padding, `im2row`, `col2im`, and a
//! direct (naïve) reference convolution.
//!
//! CNN "convolution" here means cross-correlation, as in every deep-learning
//! framework. `im2row` lowers each input patch to a row so a convolution
//! becomes one GEMM — the baseline algorithm the paper compares Winograd
//! against (its `im2row`/`im2col` rows of Table 3 and Figure 7).

use crate::tensor::Tensor;

/// Geometry of a 2-D convolution layer.
///
/// # Example
///
/// ```
/// use wa_tensor::ConvShape;
///
/// let s = ConvShape { batch: 1, in_ch: 3, in_h: 32, in_w: 32, out_ch: 32, kh: 3, kw: 3, stride: 1, pad: 1 };
/// assert_eq!((s.out_h(), s.out_w()), (32, 32));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Batch size N.
    pub batch: usize,
    /// Input channels C.
    pub in_ch: usize,
    /// Input height H.
    pub in_h: usize,
    /// Input width W.
    pub in_w: usize,
    /// Output channels K.
    pub out_ch: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both spatial dims).
    pub stride: usize,
    /// Zero padding (same on all four sides).
    pub pad: usize,
}

impl ConvShape {
    /// Output height.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input or `stride == 0`.
    pub fn out_h(&self) -> usize {
        assert!(self.stride > 0, "stride must be positive");
        let padded = self.in_h + 2 * self.pad;
        assert!(
            padded >= self.kh,
            "kernel height {} exceeds padded input {}",
            self.kh,
            padded
        );
        (padded - self.kh) / self.stride + 1
    }

    /// Output width.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the padded input or `stride == 0`.
    pub fn out_w(&self) -> usize {
        assert!(self.stride > 0, "stride must be positive");
        let padded = self.in_w + 2 * self.pad;
        assert!(
            padded >= self.kw,
            "kernel width {} exceeds padded input {}",
            self.kw,
            padded
        );
        (padded - self.kw) / self.stride + 1
    }

    /// Multiply–accumulate count of the direct algorithm (one output needs
    /// `C·kh·kw` MACs).
    pub fn direct_macs(&self) -> u64 {
        (self.batch * self.out_ch * self.out_h() * self.out_w() * self.in_ch * self.kh * self.kw)
            as u64
    }
}

/// Zero-pads an NCHW tensor by `pad` on all spatial sides.
///
/// # Panics
///
/// Panics if `x` is not 4-D.
pub fn pad_nchw(x: &Tensor, pad: usize) -> Tensor {
    assert_eq!(x.ndim(), 4, "pad_nchw expects NCHW, got {:?}", x.shape());
    if pad == 0 {
        return x.clone();
    }
    let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let (ph, pw) = (h + 2 * pad, w + 2 * pad);
    let mut out = Tensor::zeros(&[n, c, ph, pw]);
    let src = x.data();
    let dst = out.data_mut();
    for img in 0..n * c {
        let s0 = img * h * w;
        let d0 = img * ph * pw;
        for row in 0..h {
            let s = s0 + row * w;
            let d = d0 + (row + pad) * pw + pad;
            dst[d..d + w].copy_from_slice(&src[s..s + w]);
        }
    }
    out
}

/// Crops `pad` from all spatial sides — the adjoint of [`pad_nchw`].
///
/// # Panics
///
/// Panics if `x` is not 4-D or too small to crop.
pub fn unpad_nchw(x: &Tensor, pad: usize) -> Tensor {
    assert_eq!(x.ndim(), 4, "unpad_nchw expects NCHW, got {:?}", x.shape());
    if pad == 0 {
        return x.clone();
    }
    let (n, c, ph, pw) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    assert!(
        ph > 2 * pad && pw > 2 * pad,
        "cannot crop {} from {:?}",
        pad,
        x.shape()
    );
    let (h, w) = (ph - 2 * pad, pw - 2 * pad);
    let mut out = Tensor::zeros(&[n, c, h, w]);
    let src = x.data();
    let dst = out.data_mut();
    for img in 0..n * c {
        let s0 = img * ph * pw;
        let d0 = img * h * w;
        for row in 0..h {
            let s = s0 + (row + pad) * pw + pad;
            let d = d0 + row * w;
            dst[d..d + w].copy_from_slice(&src[s..s + w]);
        }
    }
    out
}

/// Lowers a *padded* NCHW input to patch rows.
///
/// Returns a `[N·outH·outW, C·kh·kw]` matrix whose row index is
/// `(n·outH + oy)·outW + ox` and whose content is the flattened
/// `C×kh×kw` patch under kernel position `(oy, ox)`. A convolution is
/// then `rows · Wᵀ` with the weight matrix `[K, C·kh·kw]`.
///
/// # Panics
///
/// Panics if `x` is not 4-D or the kernel does not fit.
pub fn im2row(x: &Tensor, kh: usize, kw: usize, stride: usize) -> Tensor {
    assert_eq!(x.ndim(), 4, "im2row expects NCHW, got {:?}", x.shape());
    assert!(stride > 0, "stride must be positive");
    let (n, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    assert!(
        h >= kh && w >= kw,
        "kernel {}x{} does not fit input {}x{}",
        kh,
        kw,
        h,
        w
    );
    let oh = (h - kh) / stride + 1;
    let ow = (w - kw) / stride + 1;
    let patch = c * kh * kw;
    let mut out = Tensor::zeros(&[n * oh * ow, patch]);
    let src = x.data();
    let dst = out.data_mut();
    for img in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((img * oh + oy) * ow + ox) * patch;
                let (iy, ix) = (oy * stride, ox * stride);
                for ch in 0..c {
                    let s0 = ((img * c + ch) * h + iy) * w + ix;
                    let d0 = row + ch * kh * kw;
                    for ky in 0..kh {
                        let s = s0 + ky * w;
                        let d = d0 + ky * kw;
                        dst[d..d + kw].copy_from_slice(&src[s..s + kw]);
                    }
                }
            }
        }
    }
    out
}

/// Adjoint of [`im2row`]: scatter-adds patch-row gradients back into a
/// padded-input-shaped tensor.
///
/// `rows` must be `[N·outH·outW, C·kh·kw]` for an input of padded size
/// `[n, c, h, w]`; returns that `[n, c, h, w]` gradient.
///
/// The geometry arguments mirror [`im2row`]'s implicit ones: `padded` is
/// the `[n, c, h, w]` shape of the padded input and `kernel` is
/// `(kh, kw)`.
///
/// # Panics
///
/// Panics if the row count or patch size disagrees with the geometry.
pub fn col2im(rows: &Tensor, padded: [usize; 4], kernel: (usize, usize), stride: usize) -> Tensor {
    let [n, c, h, w] = padded;
    let (kh, kw) = kernel;
    assert!(stride > 0, "stride must be positive");
    let oh = (h - kh) / stride + 1;
    let ow = (w - kw) / stride + 1;
    let patch = c * kh * kw;
    assert_eq!(
        rows.shape(),
        &[n * oh * ow, patch],
        "col2im rows shape {:?} does not match geometry [{}, {}]",
        rows.shape(),
        n * oh * ow,
        patch
    );
    let mut out = Tensor::zeros(&[n, c, h, w]);
    let src = rows.data();
    let dst = out.data_mut();
    for img in 0..n {
        for oy in 0..oh {
            for ox in 0..ow {
                let row = ((img * oh + oy) * ow + ox) * patch;
                let (iy, ix) = (oy * stride, ox * stride);
                for ch in 0..c {
                    let d0 = ((img * c + ch) * h + iy) * w + ix;
                    let s0 = row + ch * kh * kw;
                    for ky in 0..kh {
                        let d = d0 + ky * w;
                        let s = s0 + ky * kw;
                        for kx in 0..kw {
                            dst[d + kx] += src[s + kx];
                        }
                    }
                }
            }
        }
    }
    out
}

/// Direct (naïve loop) 2-D convolution reference with f64 accumulation.
///
/// `x` is NCHW, `weight` is `[K, C, kh, kw]`, `bias` is `[K]` or `None`.
/// Used as the semantic ground truth in tests and as the paper's "direct"
/// baseline row of Table 1.
///
/// # Panics
///
/// Panics on shape mismatches.
pub fn conv2d_direct(
    x: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    stride: usize,
    pad: usize,
) -> Tensor {
    assert_eq!(
        x.ndim(),
        4,
        "conv2d_direct input must be NCHW, got {:?}",
        x.shape()
    );
    assert_eq!(
        weight.ndim(),
        4,
        "conv2d_direct weight must be KCkhkw, got {:?}",
        weight.shape()
    );
    assert_eq!(
        x.dim(1),
        weight.dim(1),
        "input channels {} vs weight channels {}",
        x.dim(1),
        weight.dim(1)
    );
    let shape = ConvShape {
        batch: x.dim(0),
        in_ch: x.dim(1),
        in_h: x.dim(2),
        in_w: x.dim(3),
        out_ch: weight.dim(0),
        kh: weight.dim(2),
        kw: weight.dim(3),
        stride,
        pad,
    };
    if let Some(b) = bias {
        assert_eq!(
            b.shape(),
            &[shape.out_ch],
            "bias must be [{}], got {:?}",
            shape.out_ch,
            b.shape()
        );
    }
    let xp = pad_nchw(x, pad);
    let (n, c) = (shape.batch, shape.in_ch);
    let (h, w) = (xp.dim(2), xp.dim(3));
    let (k, kh, kw) = (shape.out_ch, shape.kh, shape.kw);
    let (oh, ow) = (shape.out_h(), shape.out_w());
    let mut out = Tensor::zeros(&[n, k, oh, ow]);
    let src = xp.data();
    let wts = weight.data();
    let dst = out.data_mut();
    for img in 0..n {
        for f in 0..k {
            let b = bias.map(|b| b.data()[f] as f64).unwrap_or(0.0);
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = b;
                    let (iy, ix) = (oy * stride, ox * stride);
                    for ch in 0..c {
                        let s0 = ((img * c + ch) * h + iy) * w + ix;
                        let w0 = ((f * c + ch) * kh) * kw;
                        for ky in 0..kh {
                            for kx in 0..kw {
                                acc += (src[s0 + ky * w + kx] as f64)
                                    * (wts[w0 + ky * kw + kx] as f64);
                            }
                        }
                    }
                    dst[((img * k + f) * oh + oy) * ow + ox] = acc as f32;
                }
            }
        }
    }
    out
}

/// Single-channel `valid` cross-correlation over `f64` slices.
///
/// The exactness ground truth for Winograd algebra property tests: Winograd
/// convolution over rationals must reproduce this bit-for-bit in `f64` for
/// moderate values.
///
/// # Panics
///
/// Panics if the kernel does not fit or slice lengths disagree with the
/// stated dimensions.
pub fn conv2d_direct_f64(
    input: &[f64],
    ih: usize,
    iw: usize,
    kernel: &[f64],
    kh: usize,
    kw: usize,
) -> Vec<f64> {
    assert_eq!(
        input.len(),
        ih * iw,
        "input length {} != {}x{}",
        input.len(),
        ih,
        iw
    );
    assert_eq!(
        kernel.len(),
        kh * kw,
        "kernel length {} != {}x{}",
        kernel.len(),
        kh,
        kw
    );
    assert!(
        ih >= kh && iw >= kw,
        "kernel {}x{} does not fit {}x{}",
        kh,
        kw,
        ih,
        iw
    );
    let (oh, ow) = (ih - kh + 1, iw - kw + 1);
    let mut out = vec![0.0; oh * ow];
    for oy in 0..oh {
        for ox in 0..ow {
            let mut acc = 0.0;
            for ky in 0..kh {
                for kx in 0..kw {
                    acc += input[(oy + ky) * iw + (ox + kx)] * kernel[ky * kw + kx];
                }
            }
            out[oy * ow + ox] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::Transpose;
    use crate::rng::SeededRng;

    #[test]
    fn conv_shape_output_dims() {
        let s = ConvShape {
            batch: 2,
            in_ch: 3,
            in_h: 32,
            in_w: 30,
            out_ch: 8,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        };
        assert_eq!(s.out_h(), 32);
        assert_eq!(s.out_w(), 30);
        assert_eq!(s.direct_macs(), (2 * 8 * 32 * 30 * 3 * 9) as u64);
    }

    #[test]
    fn pad_then_unpad_roundtrip() {
        let mut rng = SeededRng::new(0);
        let x = rng.uniform_tensor(&[2, 3, 5, 4], -1.0, 1.0);
        let p = pad_nchw(&x, 2);
        assert_eq!(p.shape(), &[2, 3, 9, 8]);
        assert_eq!(unpad_nchw(&p, 2), x);
    }

    #[test]
    fn pad_places_zeros_on_border() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let p = pad_nchw(&x, 1);
        assert_eq!(p.at(&[0, 0, 0, 0]), 0.0);
        assert_eq!(p.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(p.at(&[0, 0, 3, 3]), 0.0);
    }

    #[test]
    fn im2row_gemm_equals_direct_conv() {
        let mut rng = SeededRng::new(1);
        let x = rng.uniform_tensor(&[2, 3, 8, 7], -1.0, 1.0);
        let w = rng.uniform_tensor(&[5, 3, 3, 3], -1.0, 1.0);
        let want = conv2d_direct(&x, &w, None, 1, 1);

        let xp = pad_nchw(&x, 1);
        let rows = im2row(&xp, 3, 3, 1);
        let wmat = w.reshape(&[5, 3 * 3 * 3]);
        let out = crate::gemm::gemm(&rows, Transpose::No, &wmat, Transpose::Yes);
        // rows are [N*oh*ow, K]; rearrange to NCHW
        let (n, k, oh, ow) = (2, 5, 8, 7);
        let mut got = Tensor::zeros(&[n, k, oh, ow]);
        for img in 0..n {
            for oy in 0..oh {
                for ox in 0..ow {
                    for f in 0..k {
                        *got.at_mut(&[img, f, oy, ox]) = out.at(&[(img * oh + oy) * ow + ox, f]);
                    }
                }
            }
        }
        for (a, b) in got.data().iter().zip(want.data()) {
            assert!((a - b).abs() < 1e-4, "{} vs {}", a, b);
        }
    }

    #[test]
    fn im2row_strided_shapes() {
        let x = Tensor::zeros(&[1, 2, 9, 9]);
        let rows = im2row(&x, 3, 3, 2);
        assert_eq!(rows.shape(), &[16, 18]); // 4x4 positions, 2*9 patch
    }

    #[test]
    fn col2im_is_adjoint_of_im2row() {
        // <im2row(x), y> == <x, col2im(y)> for random x, y.
        let mut rng = SeededRng::new(2);
        let x = rng.uniform_tensor(&[1, 2, 6, 5], -1.0, 1.0);
        let rows = im2row(&x, 3, 3, 1);
        let y = rng.uniform_tensor(rows.shape(), -1.0, 1.0);
        let back = col2im(&y, [1, 2, 6, 5], (3, 3), 1);
        let lhs: f64 = rows
            .data()
            .iter()
            .zip(y.data())
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum();
        let rhs: f64 = x
            .data()
            .iter()
            .zip(back.data())
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum();
        assert!((lhs - rhs).abs() < 1e-3, "{} vs {}", lhs, rhs);
    }

    #[test]
    fn direct_conv_bias_is_added() {
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let w = Tensor::ones(&[2, 1, 3, 3]);
        let b = Tensor::from_vec(vec![0.5, -1.0], &[2]);
        let y = conv2d_direct(&x, &w, Some(&b), 1, 0);
        assert_eq!(y.shape(), &[1, 2, 1, 1]);
        assert_eq!(y.at(&[0, 0, 0, 0]), 9.5);
        assert_eq!(y.at(&[0, 1, 0, 0]), 8.0);
    }

    #[test]
    fn direct_conv_stride_two() {
        let x = Tensor::from_fn(&[1, 1, 4, 4], |i| i as f32);
        let w = Tensor::from_vec(vec![1.0], &[1, 1, 1, 1]);
        let y = conv2d_direct(&x, &w, None, 2, 0);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[0.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    fn f64_reference_hand_example() {
        // 3x3 input, 2x2 kernel
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let k = [1.0, 0.0, 0.0, 1.0];
        let y = conv2d_direct_f64(&x, 3, 3, &k, 2, 2);
        assert_eq!(y, vec![6.0, 8.0, 12.0, 14.0]);
    }
}
