//! The dense row-major `f32` [`Tensor`] type.

use crate::gemm::{self, Transpose};

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// `Tensor` is the single numeric container used across the workspace.
/// Convolution activations follow the NCHW layout `[batch, channel, height,
/// width]`; matrices are `[rows, cols]`.
///
/// # Example
///
/// ```
/// use wa_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, …, {:.4}] (n={})",
                self.data[0],
                self.data[1],
                self.data[self.len() - 1],
                self.len()
            )
        }
    }
}

impl Default for Tensor {
    /// The empty scalar-shaped tensor `[0.0]` so that `Debug` output is never
    /// empty and `Default` values are usable.
    fn default() -> Self {
        Tensor::zeros(&[1])
    }
}

fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

impl Tensor {
    // ----- constructors ------------------------------------------------

    /// Creates a tensor of zeros with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "tensor shape must be non-empty");
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; numel(shape)],
        }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        assert!(!shape.is_empty(), "tensor shape must be non-empty");
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; numel(shape)],
        }
    }

    /// Creates a tensor that takes ownership of `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            numel(shape),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates a tensor by evaluating `f` at every flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let n = numel(shape);
        Tensor {
            shape: shape.to_vec(),
            data: (0..n).map(&mut f).collect(),
        }
    }

    /// Serializes as a `{"shape": [...], "data": [...]}` JSON object.
    pub fn to_json(&self) -> crate::Json {
        crate::Json::obj([
            ("shape", crate::Json::arr(self.shape.iter().copied())),
            ("data", crate::Json::arr(self.data.iter().copied())),
        ])
    }

    /// Reads a tensor back from the [`Tensor::to_json`] encoding.
    pub fn from_json(json: &crate::Json) -> Result<Tensor, crate::JsonError> {
        let bad = |message: &str| crate::JsonError {
            offset: 0,
            message: message.to_string(),
        };
        let shape: Vec<usize> = json
            .get("shape")
            .and_then(|s| s.as_arr())
            .ok_or_else(|| bad("tensor JSON needs a `shape` array"))?
            .iter()
            .map(|v| v.as_f64().map(|f| f as usize))
            .collect::<Option<_>>()
            .ok_or_else(|| bad("tensor shape entries must be numbers"))?;
        let data: Vec<f32> = json
            .get("data")
            .and_then(|d| d.as_arr())
            .ok_or_else(|| bad("tensor JSON needs a `data` array"))?
            .iter()
            .map(|v| v.as_f64().map(|f| f as f32))
            .collect::<Option<_>>()
            .ok_or_else(|| bad("tensor data entries must be numbers"))?;
        if shape.is_empty() || data.len() != numel(&shape) {
            return Err(bad("tensor data length does not match shape"));
        }
        Ok(Tensor { shape, data })
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Builds a matrix from rows of `f64` values (convenience for transform
    /// matrices produced by exact Cook-Toom synthesis).
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged or empty.
    pub fn from_rows_f64(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows: {} vs {}", r.len(), cols);
            data.extend(r.iter().map(|&v| v as f32));
        }
        Tensor {
            shape: vec![rows.len(), cols],
            data,
        }
    }

    // ----- shape accessors ---------------------------------------------

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.ndim()`.
    pub fn dim(&self, i: usize) -> usize {
        self.shape[i]
    }

    /// Borrow the underlying data slice (row-major order).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor and return its data buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    // ----- reshaping ----------------------------------------------------

    /// Returns a tensor viewing the same data with a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            self.len(),
            numel(shape),
            "cannot reshape {:?} ({} elems) to {:?} ({} elems)",
            self.shape,
            self.len(),
            shape,
            numel(shape)
        );
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// In-place reshape, avoiding the copy of [`Tensor::reshape`].
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        assert_eq!(
            self.len(),
            numel(shape),
            "cannot reshape {:?} to {:?}",
            self.shape,
            shape
        );
        self.shape = shape.to_vec();
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(
            self.ndim(),
            2,
            "transpose requires a 2-D tensor, got {:?}",
            self.shape
        );
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }

    // ----- element access -----------------------------------------------

    /// Flat offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.ndim(),
            "index rank {} vs tensor rank {}",
            idx.len(),
            self.ndim()
        );
        let mut off = 0;
        for (d, (&i, &s)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(
                i < s,
                "index {} out of bounds for dim {} of size {}",
                i,
                d,
                s
            );
            off = off * s + i;
        }
        off
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Mutable element at a multi-dimensional index.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let off = self.offset(idx);
        &mut self.data[off]
    }

    // ----- elementwise ops ----------------------------------------------

    /// Elementwise sum `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product `self ⊙ other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|a| a * s)
    }

    /// Apply `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Apply `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combine two same-shaped tensors elementwise with `f`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch in elementwise op: {:?} vs {:?}",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// `self += other` in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += s * other` in place (AXPY).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled_assign(&mut self, other: &Tensor, s: f32) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    // ----- reductions ----------------------------------------------------

    /// Sum of all elements (f64 accumulator).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }

    /// Mean of all elements.
    ///
    /// Returns `0.0` for empty tensors.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum absolute value (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Minimum and maximum element values.
    ///
    /// Returns `(0.0, 0.0)` for empty tensors.
    pub fn min_max(&self) -> (f32, f32) {
        if self.data.is_empty() {
            return (0.0, 0.0);
        }
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in &self.data {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Index of the maximum element of each row of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(
            self.ndim(),
            2,
            "argmax_rows requires a 2-D tensor, got {:?}",
            self.shape
        );
        let (r, c) = (self.shape[0], self.shape[1]);
        (0..r)
            .map(|i| {
                let row = &self.data[i * c..(i + 1) * c];
                row.iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (j, &v)| {
                        if v > bv {
                            (j, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }

    /// Squared L2 norm.
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|&v| (v as f64) * (v as f64)).sum()
    }

    // ----- linear algebra -------------------------------------------------

    /// Matrix product `self · other` for 2-D tensors.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[m, k]` and `other` is `[k, n]`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        gemm::gemm(self, Transpose::No, other, Transpose::No)
    }

    /// Matrix product `selfᵀ · other`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        gemm::gemm(self, Transpose::Yes, other, Transpose::No)
    }

    /// Matrix product `self · otherᵀ`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        gemm::gemm(self, Transpose::No, other, Transpose::Yes)
    }

    // ----- slicing along dim 0 ---------------------------------------------

    /// Copies rows `[start, end)` along the leading dimension.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.dim(0)`.
    pub fn slice_dim0(&self, start: usize, end: usize) -> Tensor {
        assert!(
            start <= end && end <= self.shape[0],
            "slice {}..{} out of bounds {}",
            start,
            end,
            self.shape[0]
        );
        let row = self.len() / self.shape[0];
        let mut shape = self.shape.clone();
        shape[0] = end - start;
        Tensor {
            shape,
            data: self.data[start * row..end * row].to_vec(),
        }
    }

    /// Concatenates tensors along the leading dimension.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or trailing shapes mismatch.
    pub fn concat_dim0(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_dim0 needs at least one tensor");
        let tail = &parts[0].shape[1..];
        let mut dim0 = 0;
        for p in parts {
            assert_eq!(&p.shape[1..], tail, "trailing shape mismatch in concat");
            dim0 += p.shape[0];
        }
        let mut shape = parts[0].shape.clone();
        shape[0] = dim0;
        let mut data = Vec::with_capacity(numel(&shape));
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Tensor { shape, data }
    }

    /// Checks every element is finite, returning the first bad index if not.
    pub fn first_non_finite(&self) -> Option<usize> {
        self.data.iter().position(|v| !v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_len() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.clone().into_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_len_panics() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn eye_matmul_is_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let c = a.matmul(&Tensor::eye(2));
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_fn(&[3, 5], |i| i as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_entries() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), 6.0);
        assert_eq!(t.at(&[0, 1]), 4.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 2.0]);
        assert_eq!(a.sub(&b).data(), &[-2.0, -6.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, -8.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, -4.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn elementwise_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = a.add(&b);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, -5.0, 2.0], &[3]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.max_abs(), 5.0);
        assert_eq!(a.min_max(), (-5.0, 2.0));
        assert!((a.mean() + 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(a.sq_norm(), 30.0);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let a = Tensor::from_vec(vec![1.0, 3.0, 2.0, 9.0, 9.0, 0.0], &[2, 3]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn slice_and_concat_dim0_roundtrip() {
        let a = Tensor::from_fn(&[4, 3], |i| i as f32);
        let top = a.slice_dim0(0, 2);
        let bot = a.slice_dim0(2, 4);
        assert_eq!(Tensor::concat_dim0(&[&top, &bot]), a);
    }

    #[test]
    fn add_scaled_assign_axpy() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        a.add_scaled_assign(&b, 0.5);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn reshape_checks_numel() {
        let a = Tensor::zeros(&[2, 6]);
        let b = a.reshape(&[3, 4]);
        assert_eq!(b.shape(), &[3, 4]);
    }

    #[test]
    fn debug_is_never_empty() {
        let t = Tensor::default();
        assert!(!format!("{:?}", t).is_empty());
        let big = Tensor::zeros(&[100]);
        assert!(format!("{:?}", big).contains("n=100"));
    }

    #[test]
    fn first_non_finite_detects_nan() {
        let mut t = Tensor::ones(&[4]);
        assert_eq!(t.first_non_finite(), None);
        t.data_mut()[2] = f32::NAN;
        assert_eq!(t.first_non_finite(), Some(2));
    }
}
