//! The dense row-major `f32` [`Tensor`] type with copy-on-write storage.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::gemm::{self, Transpose};

/// Process-wide tally of bytes deep-copied by copy-on-write detaches —
/// see [`cow_detach_bytes`].
static COW_DETACH_BYTES: AtomicU64 = AtomicU64::new(0);

/// Total bytes deep-copied so far (process-wide) because a *shared*
/// tensor buffer was mutated through [`Tensor::data_mut`] (or consumed by
/// [`Tensor::into_vec`]) and had to detach.
///
/// Tensor storage is copy-on-write: [`Tensor::clone`] and
/// [`Tensor::reshape`] share one buffer, and the copy is deferred until
/// somebody writes. This counter is the observability hook for that
/// deferred copy — a read-only pipeline (e.g. the `wa-nn` batch
/// executor's inference path, where worker tapes alias one set of
/// parameter buffers) must not advance it at all. Deliberate eager
/// copies ([`Tensor::deep_clone`], `to_vec` on a data slice) are *not*
/// counted; only the lazy detach the COW machinery was forced into.
///
/// The counter is monotonic and aggregated across all threads; callers
/// measure a region of interest by differencing two snapshots.
pub fn cow_detach_bytes() -> u64 {
    COW_DETACH_BYTES.load(Ordering::Relaxed)
}

fn record_detach(elems: usize) {
    COW_DETACH_BYTES.fetch_add(
        (elems * std::mem::size_of::<f32>()) as u64,
        Ordering::Relaxed,
    );
}

/// A dense, contiguous, row-major tensor of `f32` values.
///
/// `Tensor` is the single numeric container used across the workspace.
/// Convolution activations follow the NCHW layout `[batch, channel, height,
/// width]`; matrices are `[rows, cols]`.
///
/// # Storage semantics
///
/// The element buffer is shared, copy-on-write (`Arc<Vec<f32>>`):
///
/// * [`Tensor::clone`] is **O(1)** — a refcount bump, no buffer copy.
///   Clones alias the same storage (observable via [`Tensor::data_ptr`] /
///   [`Tensor::ptr_eq`]).
/// * [`Tensor::data_mut`] is the **single mutation door**: it detaches
///   the tensor from any aliases first (copying the buffer if — and only
///   if — it is shared, tallied by [`cow_detach_bytes`]), so mutating a
///   clone can never perturb the original. Every in-place method
///   (`map_in_place`, `add_assign`, `at_mut`, …) routes through it.
/// * [`Tensor::reshape`] shares storage too: reshapes are free.
///
/// This is what makes read-only fan-out (many inference worker threads
/// reading one set of model parameters) genuinely zero-copy while
/// keeping value semantics for writers.
///
/// # Example
///
/// ```
/// use wa_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
///
/// let mut c = t.clone();
/// assert!(c.ptr_eq(&t));      // O(1) clone: same buffer
/// c.data_mut()[0] = 1.0;      // copy-on-write detach
/// assert!(!c.ptr_eq(&t));
/// assert_eq!(t.data()[0], 0.0); // original untouched
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Arc<Vec<f32>>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, …, {:.4}] (n={})",
                self.data[0],
                self.data[1],
                self.data[self.len() - 1],
                self.len()
            )
        }
    }
}

impl Default for Tensor {
    /// The empty scalar-shaped tensor `[0.0]` so that `Debug` output is never
    /// empty and `Default` values are usable.
    fn default() -> Self {
        Tensor::zeros(&[1])
    }
}

fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

impl Tensor {
    // ----- constructors ------------------------------------------------

    /// Creates a tensor of zeros with the given shape.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is empty.
    pub fn zeros(shape: &[usize]) -> Self {
        assert!(!shape.is_empty(), "tensor shape must be non-empty");
        Tensor {
            shape: shape.to_vec(),
            data: Arc::new(vec![0.0; numel(shape)]),
        }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        assert!(!shape.is_empty(), "tensor shape must be non-empty");
        Tensor {
            shape: shape.to_vec(),
            data: Arc::new(vec![value; numel(shape)]),
        }
    }

    /// Creates a tensor that takes ownership of `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            numel(shape),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            shape: shape.to_vec(),
            data: Arc::new(data),
        }
    }

    /// Creates a tensor by evaluating `f` at every flat index.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let n = numel(shape);
        Tensor {
            shape: shape.to_vec(),
            data: Arc::new((0..n).map(&mut f).collect()),
        }
    }

    /// Serializes as a `{"shape": [...], "data": [...]}` JSON object.
    pub fn to_json(&self) -> crate::Json {
        crate::Json::obj([
            ("shape", crate::Json::arr(self.shape.iter().copied())),
            ("data", crate::Json::arr(self.data.iter().copied())),
        ])
    }

    /// Reads a tensor back from the [`Tensor::to_json`] encoding.
    pub fn from_json(json: &crate::Json) -> Result<Tensor, crate::JsonError> {
        let bad = |message: &str| crate::JsonError {
            offset: 0,
            message: message.to_string(),
        };
        let shape: Vec<usize> = json
            .get("shape")
            .and_then(|s| s.as_arr())
            .ok_or_else(|| bad("tensor JSON needs a `shape` array"))?
            .iter()
            .map(|v| v.as_f64().map(|f| f as usize))
            .collect::<Option<_>>()
            .ok_or_else(|| bad("tensor shape entries must be numbers"))?;
        let data: Vec<f32> = json
            .get("data")
            .and_then(|d| d.as_arr())
            .ok_or_else(|| bad("tensor JSON needs a `data` array"))?
            .iter()
            .map(|v| v.as_f64().map(|f| f as f32))
            .collect::<Option<_>>()
            .ok_or_else(|| bad("tensor data entries must be numbers"))?;
        if shape.is_empty() || data.len() != numel(&shape) {
            return Err(bad("tensor data length does not match shape"));
        }
        Ok(Tensor {
            shape,
            data: Arc::new(data),
        })
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut data = vec![0.0f32; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Tensor::from_vec(data, &[n, n])
    }

    /// Builds a matrix from rows of `f64` values (convenience for transform
    /// matrices produced by exact Cook-Toom synthesis).
    ///
    /// # Panics
    ///
    /// Panics if the rows are ragged or empty.
    pub fn from_rows_f64(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows: {} vs {}", r.len(), cols);
            data.extend(r.iter().map(|&v| v as f32));
        }
        Tensor {
            shape: vec![rows.len(), cols],
            data: Arc::new(data),
        }
    }

    // ----- shape accessors ---------------------------------------------

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.ndim()`.
    pub fn dim(&self, i: usize) -> usize {
        self.shape[i]
    }

    /// Borrow the underlying data slice (row-major order).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the underlying data slice.
    ///
    /// This is the **only** way to mutate tensor storage — the
    /// copy-on-write choke point. If the buffer is shared with any clone
    /// or reshape, it is detached (deep-copied, tallied by
    /// [`cow_detach_bytes`]) first, so the mutation can never be observed
    /// through an alias. A uniquely-owned buffer is handed out directly
    /// with no copy.
    pub fn data_mut(&mut self) -> &mut [f32] {
        if Arc::get_mut(&mut self.data).is_none() {
            record_detach(self.data.len());
        }
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Consume the tensor and return its data buffer.
    ///
    /// Free when this tensor is the buffer's sole owner; a shared buffer
    /// is deep-copied (counted as a COW detach) so aliases stay intact.
    pub fn into_vec(self) -> Vec<f32> {
        Arc::try_unwrap(self.data).unwrap_or_else(|shared| {
            record_detach(shared.len());
            (*shared).clone()
        })
    }

    /// Address of the first element — the aliasing witness used by the
    /// copy-on-write test suite and zero-copy assertions: two tensors
    /// share storage iff their pointers are equal (see [`Tensor::ptr_eq`]).
    /// The pointer must not be dereferenced beyond comparison; any
    /// mutation through [`Tensor::data_mut`] may relocate the buffer.
    pub fn data_ptr(&self) -> *const f32 {
        self.data.as_ptr()
    }

    /// Whether `self` and `other` share one storage buffer (clone /
    /// reshape aliases that have not been detached by a write).
    pub fn ptr_eq(&self, other: &Tensor) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// An eagerly deep-copied tensor with uniquely-owned storage.
    ///
    /// Unlike writing through [`Tensor::data_mut`] after a [`Clone`],
    /// this copy is deliberate and therefore *not* counted by
    /// [`cow_detach_bytes`] — use it at clone-then-overwrite sites so
    /// the detach counter keeps meaning "accidental copy".
    pub fn deep_clone(&self) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: Arc::new((*self.data).clone()),
        }
    }

    // ----- reshaping ----------------------------------------------------

    /// Returns a tensor viewing the same data with a new shape.
    ///
    /// Zero-copy: the result *shares* this tensor's buffer (copy-on-write,
    /// like [`Tensor::clone`]), so reshapes inside hot pipelines are free.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            self.len(),
            numel(shape),
            "cannot reshape {:?} ({} elems) to {:?} ({} elems)",
            self.shape,
            self.len(),
            shape,
            numel(shape)
        );
        Tensor {
            shape: shape.to_vec(),
            data: Arc::clone(&self.data),
        }
    }

    /// In-place reshape, avoiding the copy of [`Tensor::reshape`].
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        assert_eq!(
            self.len(),
            numel(shape),
            "cannot reshape {:?} to {:?}",
            self.shape,
            shape
        );
        self.shape = shape.to_vec();
    }

    /// Transpose of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(
            self.ndim(),
            2,
            "transpose requires a 2-D tensor, got {:?}",
            self.shape
        );
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut data = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                data[j * r + i] = self.data[i * c + j];
            }
        }
        Tensor::from_vec(data, &[c, r])
    }

    // ----- element access -----------------------------------------------

    /// Flat offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or is out of bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.ndim(),
            "index rank {} vs tensor rank {}",
            idx.len(),
            self.ndim()
        );
        let mut off = 0;
        for (d, (&i, &s)) in idx.iter().zip(&self.shape).enumerate() {
            assert!(
                i < s,
                "index {} out of bounds for dim {} of size {}",
                i,
                d,
                s
            );
            off = off * s + i;
        }
        off
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.offset(idx)]
    }

    /// Mutable element at a multi-dimensional index (detaches shared
    /// storage first, like [`Tensor::data_mut`]).
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let off = self.offset(idx);
        &mut self.data_mut()[off]
    }

    // ----- elementwise ops ----------------------------------------------

    /// Elementwise sum `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product `self ⊙ other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|a| a * s)
    }

    /// Apply `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: Arc::new(self.data.iter().map(|&a| f(a)).collect()),
        }
    }

    /// Apply `f` to every element in place (detaching shared storage
    /// first).
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.data_mut() {
            *v = f(*v);
        }
    }

    /// Combine two same-shaped tensors elementwise with `f`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch in elementwise op: {:?} vs {:?}",
            self.shape, other.shape
        );
        Tensor {
            shape: self.shape.clone(),
            data: Arc::new(
                self.data
                    .iter()
                    .zip(other.data.iter())
                    .map(|(&a, &b)| f(a, b))
                    .collect(),
            ),
        }
    }

    /// `self += other` in place.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        let rhs = Arc::clone(&other.data);
        for (a, &b) in self.data_mut().iter_mut().zip(rhs.iter()) {
            *a += b;
        }
    }

    /// `self += s * other` in place (AXPY).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled_assign(&mut self, other: &Tensor, s: f32) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
        let rhs = Arc::clone(&other.data);
        for (a, &b) in self.data_mut().iter_mut().zip(rhs.iter()) {
            *a += s * b;
        }
    }

    // ----- reductions ----------------------------------------------------

    /// Sum of all elements (f64 accumulator).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }

    /// Mean of all elements.
    ///
    /// Returns `0.0` for empty tensors.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum absolute value (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Minimum and maximum element values.
    ///
    /// Returns `(0.0, 0.0)` for empty tensors.
    pub fn min_max(&self) -> (f32, f32) {
        if self.data.is_empty() {
            return (0.0, 0.0);
        }
        let mut lo = f32::INFINITY;
        let mut hi = f32::NEG_INFINITY;
        for &v in self.data.iter() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        (lo, hi)
    }

    /// Index of the maximum element of each row of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(
            self.ndim(),
            2,
            "argmax_rows requires a 2-D tensor, got {:?}",
            self.shape
        );
        let (r, c) = (self.shape[0], self.shape[1]);
        (0..r)
            .map(|i| {
                let row = &self.data[i * c..(i + 1) * c];
                row.iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (j, &v)| {
                        if v > bv {
                            (j, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }

    /// Squared L2 norm.
    pub fn sq_norm(&self) -> f64 {
        self.data.iter().map(|&v| (v as f64) * (v as f64)).sum()
    }

    // ----- linear algebra -------------------------------------------------

    /// Matrix product `self · other` for 2-D tensors.
    ///
    /// # Panics
    ///
    /// Panics unless `self` is `[m, k]` and `other` is `[k, n]`.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        gemm::gemm(self, Transpose::No, other, Transpose::No)
    }

    /// Matrix product `selfᵀ · other`.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        gemm::gemm(self, Transpose::Yes, other, Transpose::No)
    }

    /// Matrix product `self · otherᵀ`.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        gemm::gemm(self, Transpose::No, other, Transpose::Yes)
    }

    // ----- slicing along dim 0 ---------------------------------------------

    /// Copies rows `[start, end)` along the leading dimension.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.dim(0)`.
    pub fn slice_dim0(&self, start: usize, end: usize) -> Tensor {
        assert!(
            start <= end && end <= self.shape[0],
            "slice {}..{} out of bounds {}",
            start,
            end,
            self.shape[0]
        );
        let row = self.len() / self.shape[0];
        let mut shape = self.shape.clone();
        shape[0] = end - start;
        Tensor {
            shape,
            data: Arc::new(self.data[start * row..end * row].to_vec()),
        }
    }

    /// Concatenates tensors along the leading dimension.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or trailing shapes mismatch.
    pub fn concat_dim0(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_dim0 needs at least one tensor");
        let tail = &parts[0].shape[1..];
        let mut dim0 = 0;
        for p in parts {
            assert_eq!(&p.shape[1..], tail, "trailing shape mismatch in concat");
            dim0 += p.shape[0];
        }
        let mut shape = parts[0].shape.clone();
        shape[0] = dim0;
        let mut data = Vec::with_capacity(numel(&shape));
        for p in parts {
            data.extend_from_slice(&p.data);
        }
        Tensor {
            shape,
            data: Arc::new(data),
        }
    }

    /// Checks every element is finite, returning the first bad index if not.
    pub fn first_non_finite(&self) -> Option<usize> {
        self.data.iter().position(|v| !v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shape_and_len() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(t.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.clone().into_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_len_panics() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn eye_matmul_is_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let c = a.matmul(&Tensor::eye(2));
        assert_eq!(c.data(), a.data());
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_fn(&[3, 5], |i| i as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_entries() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), 6.0);
        assert_eq!(t.at(&[0, 1]), 4.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, -2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(a.add(&b).data(), &[4.0, 2.0]);
        assert_eq!(a.sub(&b).data(), &[-2.0, -6.0]);
        assert_eq!(a.mul(&b).data(), &[3.0, -8.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, -4.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn elementwise_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = a.add(&b);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, -5.0, 2.0], &[3]);
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.max_abs(), 5.0);
        assert_eq!(a.min_max(), (-5.0, 2.0));
        assert!((a.mean() + 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(a.sq_norm(), 30.0);
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let a = Tensor::from_vec(vec![1.0, 3.0, 2.0, 9.0, 9.0, 0.0], &[2, 3]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn slice_and_concat_dim0_roundtrip() {
        let a = Tensor::from_fn(&[4, 3], |i| i as f32);
        let top = a.slice_dim0(0, 2);
        let bot = a.slice_dim0(2, 4);
        assert_eq!(Tensor::concat_dim0(&[&top, &bot]), a);
    }

    #[test]
    fn add_scaled_assign_axpy() {
        let mut a = Tensor::ones(&[3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        a.add_scaled_assign(&b, 0.5);
        assert_eq!(a.data(), &[1.5, 2.0, 2.5]);
    }

    #[test]
    fn reshape_checks_numel() {
        let a = Tensor::zeros(&[2, 6]);
        let b = a.reshape(&[3, 4]);
        assert_eq!(b.shape(), &[3, 4]);
    }

    #[test]
    fn debug_is_never_empty() {
        let t = Tensor::default();
        assert!(!format!("{:?}", t).is_empty());
        let big = Tensor::zeros(&[100]);
        assert!(format!("{:?}", big).contains("n=100"));
    }

    #[test]
    fn first_non_finite_detects_nan() {
        let mut t = Tensor::ones(&[4]);
        assert_eq!(t.first_non_finite(), None);
        t.data_mut()[2] = f32::NAN;
        assert_eq!(t.first_non_finite(), Some(2));
    }

    #[test]
    fn clone_aliases_and_write_detaches() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let mut c = t.clone();
        assert!(c.ptr_eq(&t), "clone must share storage");
        assert_eq!(c.data_ptr(), t.data_ptr());
        c.data_mut()[1] = 9.0;
        assert!(!c.ptr_eq(&t), "write must detach the clone");
        assert_eq!(t.data(), &[1.0, 2.0, 3.0], "original must be untouched");
        assert_eq!(c.data(), &[1.0, 9.0, 3.0]);
    }

    #[test]
    fn reshape_shares_storage() {
        let t = Tensor::from_fn(&[2, 6], |i| i as f32);
        let r = t.reshape(&[3, 4]);
        assert!(r.ptr_eq(&t), "reshape must be zero-copy");
        assert_eq!(r.shape(), &[3, 4]);
    }

    #[test]
    fn deep_clone_is_detached_up_front() {
        let t = Tensor::ones(&[4]);
        let d = t.deep_clone();
        assert!(!d.ptr_eq(&t));
        assert_eq!(d, t);
    }

    #[test]
    fn unique_data_mut_does_not_copy() {
        let mut t = Tensor::ones(&[8]);
        let before = t.data_ptr();
        t.data_mut()[0] = 2.0;
        assert_eq!(t.data_ptr(), before, "sole owner must mutate in place");
    }

    #[test]
    fn into_vec_preserves_aliases() {
        let t = Tensor::from_vec(vec![5.0, 6.0], &[2]);
        let c = t.clone();
        let v = c.into_vec();
        assert_eq!(v, vec![5.0, 6.0]);
        assert_eq!(t.data(), &[5.0, 6.0]);
    }
}
