//! Packed, cache-blocked micro-kernel matrix multiply.
//!
//! A dependency-free GEMM in the GotoBLAS shape, tuned for the modest
//! matrix sizes that appear in CNN inference/training on small images:
//!
//! * **Packing** — `B` is repacked once per call into `NR`-wide column
//!   panels (zero-padded at the right edge) held in a reused thread-local
//!   scratch buffer, so the inner kernel reads it as contiguous
//!   `[kc × NR]` strips. `A` is *borrowed* in place when untransposed;
//!   only `Transpose::Yes` operands are transpose-packed (also into
//!   reused scratch). Neither operand is ever cloned wholesale.
//! * **Blocking** — the `k` dimension is split into [`KC`]-deep panels
//!   and rows into [`MC`]-tall blocks, so one `B` strip (`KC·NR` floats)
//!   stays L1-resident while the `A` block streams from L2.
//! * **Micro-kernel** — an `MR×NR` (4×8) register tile written as
//!   fixed-bound loops that LLVM auto-vectorizes. Full panels and
//!   remainder rows run the *same* const-generic kernel, so every output
//!   element — tail or not — comes from the identical accumulation
//!   pattern.
//!
//! Numerical contract: each output element is accumulated over `k` in
//! strictly ascending order (the K-panel split reads the partial result
//! back instead of reassociating), so the result is bit-identical to a
//! naive f32 triple loop for **every** shape — the property the
//! `gemm_regression` suite and the executor parity suites pin.
//!
//! Large products are split across threads by whole output rows with
//! `std::thread::scope`; the split never changes results.

use std::cell::Cell;
use std::sync::{Arc, OnceLock};

use crate::tensor::Tensor;

/// Bumps `wa_gemm_calls_total{kind=...}` through a per-kind cached
/// handle: one relaxed atomic add per GEMM call.
fn count_gemm_call(cell: &OnceLock<Arc<wa_obs::Counter>>, kind: &'static str) {
    cell.get_or_init(|| {
        wa_obs::counter_with(
            "wa_gemm_calls_total",
            "GEMM invocations, by kind (single 2-D products vs batched Winograd-coordinate products).",
            &[("kind", kind)],
        )
    })
    .inc();
}

/// Whether an operand of [`gemm`] is logically transposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the stored operand.
    Yes,
}

/// Multiply-accumulate operations (`m·n·k`) above which the GEMM is split
/// across threads. Shared with the integer kernel (`gemm_i8`) so both
/// paths make the same go-parallel decision for a given problem size.
pub(crate) const PARALLEL_THRESHOLD: usize = 64 * 64 * 64;

/// Rows per register tile.
const MR: usize = 4;

/// Columns per register tile (and per packed `B` panel). `MR·NR` f32
/// accumulators fill 8 SSE registers, leaving room for the broadcast and
/// the `B` strip on baseline x86-64.
const NR: usize = 8;

/// K-panel depth: one `B` strip is `KC·NR` floats = 8 KiB, comfortably
/// L1-resident across a whole row block.
const KC: usize = 256;

/// Rows per A block: `MC·KC` floats = 64 KiB streams from L2 while the
/// `B` strip stays in L1.
const MC: usize = 64;

thread_local! {
    /// Per-thread cap on the GEMM's internal worker count (see
    /// [`with_gemm_thread_cap`]).
    static GEMM_THREAD_CAP: Cell<usize> = const { Cell::new(usize::MAX) };

    /// Reused scratch for transpose-packing `A` (`Transpose::Yes` only).
    static PACK_A: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };

    /// Reused scratch for panel-packing `B`.
    static PACK_B: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
}

/// Runs `f` with this thread's GEMM parallelism capped at `cap` threads
/// (a cap of 1 keeps every GEMM on the calling thread), restoring the
/// previous cap afterwards — including on panic, so a caught unwind on a
/// long-lived thread cannot leave its GEMMs silently serialized.
///
/// Outer parallel layers — e.g. a batch executor that already runs one
/// worker per core — use this to stop large products from spawning a
/// *second* level of threads and oversubscribing the machine. The cap
/// never changes results: the threaded split assigns whole output rows,
/// so every element is computed identically either way.
pub fn with_gemm_thread_cap<R>(cap: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            GEMM_THREAD_CAP.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(GEMM_THREAD_CAP.with(|c| c.replace(cap.max(1))));
    f()
}

/// Worker threads a GEMM may use right now: every available core, bounded
/// by the ambient [`with_gemm_thread_cap`]. Shared with `gemm_i8`, so
/// the cap governs the integer kernel too.
pub(crate) fn gemm_threads() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(GEMM_THREAD_CAP.with(|c| c.get()))
}

/// Computes `op_a(a) · op_b(b)` for 2-D tensors.
///
/// `op(a)` is `a` or `aᵀ` according to the [`Transpose`] flags; the result
/// has shape `[m, n]` where `op_a(a)` is `[m, k]` and `op_b(b)` is `[k, n]`.
///
/// # Panics
///
/// Panics if either tensor is not 2-D or the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use wa_tensor::{gemm, Tensor, Transpose};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
/// let c = gemm(&a, Transpose::Yes, &b, Transpose::No);
/// assert_eq!(c.data(), &[1.0, 3.0, 2.0, 4.0]);
/// ```
pub fn gemm(a: &Tensor, ta: Transpose, b: &Tensor, tb: Transpose) -> Tensor {
    let (m, k) = op_dims(a, ta);
    let (kb, n) = op_dims(b, tb);
    assert_eq!(k, kb, "gemm inner dimension mismatch: {} vs {}", k, kb);
    let mut out = Tensor::zeros(&[m, n]);
    gemm_into(a, ta, b, tb, &mut out);
    out
}

fn op_dims(t: &Tensor, tr: Transpose) -> (usize, usize) {
    assert_eq!(
        t.ndim(),
        2,
        "gemm operands must be 2-D, got {:?}",
        t.shape()
    );
    match tr {
        Transpose::No => (t.dim(0), t.dim(1)),
        Transpose::Yes => (t.dim(1), t.dim(0)),
    }
}

/// Computes `out = op_a(a) · op_b(b)`, overwriting `out`.
///
/// Use this to reuse an output allocation inside hot loops.
///
/// # Panics
///
/// Panics if shapes disagree (see [`gemm`]) or `out` is not `[m, n]`.
pub fn gemm_into(a: &Tensor, ta: Transpose, b: &Tensor, tb: Transpose, out: &mut Tensor) {
    let (m, k) = op_dims(a, ta);
    let (kb, n) = op_dims(b, tb);
    assert_eq!(k, kb, "gemm inner dimension mismatch: {} vs {}", k, kb);
    assert_eq!(
        out.shape(),
        &[m, n],
        "gemm output must be [{}, {}], got {:?}",
        m,
        n,
        out.shape()
    );
    static CALLS: OnceLock<Arc<wa_obs::Counter>> = OnceLock::new();
    count_gemm_call(&CALLS, "single");
    let out_data = out.data_mut();
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out_data.fill(0.0);
        return;
    }

    // B is always repacked into NR-wide panels (the kernel's native
    // layout); A is borrowed in place unless it needs transposing. Both
    // scratch buffers are thread-local and reused across calls.
    PACK_B.with(|bcell| {
        let mut bbuf = bcell.take();
        pack_b_panels(b.data(), tb, k, n, &mut bbuf);
        match ta {
            Transpose::No => compute(a.data(), &bbuf, out_data, m, n, k),
            Transpose::Yes => PACK_A.with(|acell| {
                let mut abuf = acell.take();
                pack_a_transposed(a.data(), m, k, &mut abuf);
                compute(&abuf, &bbuf, out_data, m, n, k);
                acell.set(abuf);
            }),
        }
        bcell.set(bbuf);
    });
}

/// Batched matrix multiply over flat slices: for each `s` in `0..batch`,
/// `out[s] = a[s] · b[s]` with `a[s]: [m, k]`, `b[s]: [k, n]`,
/// `out[s]: [m, n]`, all stored contiguously.
///
/// This is the substrate for the Winograd per-coordinate GEMM stage
/// `M_uv = U_uv · V_uv`: `n²` independent small products that would
/// each sit below the threading threshold alone but together dominate a
/// chunk's runtime. The batch is split across threads (respecting
/// [`with_gemm_thread_cap`]); every item runs the same packed
/// micro-kernel as [`gemm`], so each output element is accumulated over
/// `k` in ascending order — bit-identical to a naive triple loop, and
/// independent of the thread split.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated dimensions.
pub fn gemm_batched(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), batch * m * k, "gemm_batched lhs length mismatch");
    assert_eq!(b.len(), batch * k * n, "gemm_batched rhs length mismatch");
    assert_eq!(
        out.len(),
        batch * m * n,
        "gemm_batched output length mismatch"
    );
    static CALLS: OnceLock<Arc<wa_obs::Counter>> = OnceLock::new();
    count_gemm_call(&CALLS, "batched");
    if batch == 0 || m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }

    let threads = if batch * m * n * k >= PARALLEL_THRESHOLD {
        gemm_threads().min(batch)
    } else {
        1
    };
    if threads > 1 {
        let per = batch.div_ceil(threads);
        std::thread::scope(|s| {
            for (ti, ochunk) in out.chunks_mut(per * m * n).enumerate() {
                let s0 = ti * per;
                s.spawn(move || batch_range(a, b, ochunk, s0, m, k, n));
            }
        });
    } else {
        batch_range(a, b, out, 0, m, k, n);
    }
}

/// Computes `out` for batch items `s0..s0 + out.len()/(m·n)` on the
/// calling thread, packing each `b[s]` into this thread's scratch.
fn batch_range(a: &[f32], b: &[f32], out: &mut [f32], s0: usize, m: usize, k: usize, n: usize) {
    PACK_B.with(|bcell| {
        let mut bbuf = bcell.take();
        for (i, oitem) in out.chunks_mut(m * n).enumerate() {
            let s = s0 + i;
            pack_b_panels(
                &b[s * k * n..(s + 1) * k * n],
                Transpose::No,
                k,
                n,
                &mut bbuf,
            );
            kernel_rows(&a[s * m * k..(s + 1) * m * k], &bbuf, oitem, m, n, k);
        }
        bcell.set(bbuf);
    });
}

/// Repacks `B` into `⌈n/NR⌉` column panels, each a contiguous
/// `[k × NR]` strip (`panel[p·NR + jj] = B[p, j0 + jj]`), zero-padding
/// the right edge so the micro-kernel always reads full `NR` lanes.
fn pack_b_panels(src: &[f32], tb: Transpose, k: usize, n: usize, buf: &mut Vec<f32>) {
    let npanels = n.div_ceil(NR);
    let need = npanels * k * NR;
    if buf.len() < need {
        buf.resize(need, 0.0);
    }
    for jp in 0..npanels {
        let j0 = jp * NR;
        let nr = NR.min(n - j0);
        let panel = &mut buf[jp * k * NR..(jp + 1) * k * NR];
        match tb {
            Transpose::No => {
                // stored [k, n]
                for p in 0..k {
                    let srow = &src[p * n + j0..p * n + j0 + nr];
                    let drow = &mut panel[p * NR..(p + 1) * NR];
                    drow[..nr].copy_from_slice(srow);
                    for v in &mut drow[nr..] {
                        *v = 0.0;
                    }
                }
            }
            Transpose::Yes => {
                // stored [n, k]: panel columns are source rows
                for jj in 0..nr {
                    let scol = &src[(j0 + jj) * k..(j0 + jj + 1) * k];
                    for (p, &v) in scol.iter().enumerate() {
                        panel[p * NR + jj] = v;
                    }
                }
                for jj in nr..NR {
                    for p in 0..k {
                        panel[p * NR + jj] = 0.0;
                    }
                }
            }
        }
    }
}

/// Transpose-packs an `A` stored `[k, m]` into row-major `[m, k]`,
/// blocked for cache-friendly strides on both sides.
fn pack_a_transposed(src: &[f32], m: usize, k: usize, buf: &mut Vec<f32>) {
    let need = m * k;
    if buf.len() < need {
        buf.resize(need, 0.0);
    }
    const TB: usize = 32;
    let mut i0 = 0;
    while i0 < m {
        let im = (i0 + TB).min(m);
        let mut p0 = 0;
        while p0 < k {
            let pm = (p0 + TB).min(k);
            for i in i0..im {
                for p in p0..pm {
                    buf[i * k + p] = src[p * m + i];
                }
            }
            p0 = pm;
        }
        i0 = im;
    }
}

/// Multiplies row-major `a [m, k]` by panel-packed `bp` into `out [m, n]`,
/// splitting rows across threads when the product is large enough.
fn compute(a: &[f32], bp: &[f32], out: &mut [f32], m: usize, n: usize, k: usize) {
    let threads = if m * n * k >= PARALLEL_THRESHOLD {
        gemm_threads()
    } else {
        1
    };
    if threads > 1 {
        // MR-aligned row chunks so no register tile spans two workers
        let rows_per = m.div_ceil(threads).next_multiple_of(MR);
        std::thread::scope(|s| {
            for (ti, chunk) in out.chunks_mut(rows_per * n).enumerate() {
                let row0 = ti * rows_per;
                s.spawn(move || {
                    let rows = chunk.len() / n;
                    kernel_rows(&a[row0 * k..(row0 + rows) * k], bp, chunk, rows, n, k);
                });
            }
        });
    } else {
        kernel_rows(a, bp, out, m, n, k);
    }
}

/// The blocked kernel: `out[rows, n] = a[rows, k] · B` with `B` packed
/// into `NR` panels by [`pack_b_panels`].
///
/// Loop nest (GotoBLAS order): K-panels of depth [`KC`] outermost — the
/// partial result is read back from `out` on later panels, preserving the
/// exact per-element `k` accumulation order — then [`MC`]-row blocks,
/// then `B` panels (one `KC·NR` strip stays L1-hot across the whole row
/// block), then `MR`-row register tiles with the remainder rows running
/// the same const-generic micro-kernel.
fn kernel_rows(a: &[f32], bp: &[f32], out: &mut [f32], rows: usize, n: usize, k: usize) {
    let npanels = n.div_ceil(NR);
    let mut pc = 0;
    while pc < k {
        let kc = KC.min(k - pc);
        let accumulate = pc > 0;
        let mut ic = 0;
        while ic < rows {
            let mc = MC.min(rows - ic);
            for jp in 0..npanels {
                let j0 = jp * NR;
                let nr = NR.min(n - j0);
                let strip = &bp[jp * k * NR + pc * NR..jp * k * NR + (pc + kc) * NR];
                let mut ir = 0;
                while ir + MR <= mc {
                    let i = ic + ir;
                    micro::<MR>(
                        &a[i * k + pc..],
                        k,
                        strip,
                        &mut out[i * n..],
                        n,
                        j0,
                        nr,
                        accumulate,
                    );
                    ir += MR;
                }
                let i = ic + ir;
                match mc - ir {
                    1 => micro::<1>(
                        &a[i * k + pc..],
                        k,
                        strip,
                        &mut out[i * n..],
                        n,
                        j0,
                        nr,
                        accumulate,
                    ),
                    2 => micro::<2>(
                        &a[i * k + pc..],
                        k,
                        strip,
                        &mut out[i * n..],
                        n,
                        j0,
                        nr,
                        accumulate,
                    ),
                    3 => micro::<3>(
                        &a[i * k + pc..],
                        k,
                        strip,
                        &mut out[i * n..],
                        n,
                        j0,
                        nr,
                        accumulate,
                    ),
                    _ => {}
                }
            }
            ic += mc;
        }
        pc += kc;
    }
}

/// The `R × NR` register-tile micro-kernel.
///
/// `a` starts at the tile's first row and current K-panel (row stride
/// `k`); `strip` is the packed `kc × NR` B strip; `out` starts at the
/// tile's first row (row stride `n`), with `nr ≤ NR` live columns at
/// `j0`. Padded B lanes contribute only to accumulator lanes that are
/// never stored.
///
/// Every tile — interior or edge — runs this same code: the accumulator
/// starts at zero (or the previous K-panel's partial result) and adds
/// `a·b` products in ascending `k` order, so each output element is
/// bit-identical to a naive f32 triple loop regardless of `R` or the
/// panel split.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn micro<const R: usize>(
    a: &[f32],
    k: usize,
    strip: &[f32],
    out: &mut [f32],
    n: usize,
    j0: usize,
    nr: usize,
    accumulate: bool,
) {
    let mut acc = [[0.0f32; NR]; R];
    if accumulate {
        for (r, accr) in acc.iter_mut().enumerate() {
            accr[..nr].copy_from_slice(&out[r * n + j0..r * n + j0 + nr]);
        }
    }
    for (p, brow) in strip.chunks_exact(NR).enumerate() {
        for (r, accr) in acc.iter_mut().enumerate() {
            let av = a[r * k + p];
            for (dst, &bv) in accr.iter_mut().zip(brow) {
                *dst += av * bv;
            }
        }
    }
    for (r, accr) in acc.iter().enumerate() {
        out[r * n + j0..r * n + j0 + nr].copy_from_slice(&accr[..nr]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dim(0), a.dim(1));
        let n = b.dim(1);
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc += (a.data()[i * k + p] as f64) * (b.data()[p * n + j] as f64);
                }
                *out.at_mut(&[i, j]) = acc as f32;
            }
        }
        out
    }

    fn rand_mat(r: usize, c: usize, seed: u64) -> Tensor {
        let mut rng = crate::rng::SeededRng::new(seed);
        Tensor::from_fn(&[r, c], |_| rng.uniform(-1.0, 1.0))
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{} vs {}",
                x,
                y
            );
        }
    }

    #[test]
    fn matches_naive_small() {
        for (m, k, n) in [(1, 1, 1), (2, 3, 4), (5, 7, 3), (8, 8, 8), (13, 1, 9)] {
            let a = rand_mat(m, k, 42 + m as u64);
            let b = rand_mat(k, n, 7 + n as u64);
            assert_close(
                &gemm(&a, Transpose::No, &b, Transpose::No),
                &naive(&a, &b),
                1e-5,
            );
        }
    }

    #[test]
    fn transpose_flags_agree_with_explicit_transpose() {
        let a = rand_mat(6, 4, 1);
        let b = rand_mat(6, 5, 2);
        // aᵀ·b
        let want = naive(&a.transpose(), &b);
        assert_close(&gemm(&a, Transpose::Yes, &b, Transpose::No), &want, 1e-5);
        // aᵀ·cᵀ : [4,6]·[6,5]
        let c = rand_mat(5, 6, 3);
        let want2 = naive(&a.transpose(), &c.transpose());
        assert_close(&gemm(&a, Transpose::Yes, &c, Transpose::Yes), &want2, 1e-5);
    }

    #[test]
    fn parallel_path_matches_naive() {
        // Force the threshold by exceeding 64^3 multiply-accumulates.
        let a = rand_mat(80, 70, 11);
        let b = rand_mat(70, 90, 12);
        assert_close(
            &gemm(&a, Transpose::No, &b, Transpose::No),
            &naive(&a, &b),
            1e-4,
        );
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = gemm(&a, Transpose::No, &b, Transpose::No);
    }

    #[test]
    fn gemm_into_reuses_buffer() {
        let a = rand_mat(3, 3, 5);
        let b = rand_mat(3, 3, 6);
        let mut out = Tensor::ones(&[3, 3]);
        gemm_into(&a, Transpose::No, &b, Transpose::No, &mut out);
        assert_close(&out, &naive(&a, &b), 1e-5);
    }

    #[test]
    fn zero_k_overwrites_output_with_zeros() {
        let a = Tensor::zeros(&[3, 0]);
        let b = Tensor::zeros(&[0, 4]);
        let mut out = Tensor::ones(&[3, 4]);
        gemm_into(&a, Transpose::No, &b, Transpose::No, &mut out);
        assert!(out.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn batched_matches_per_item_gemm_exactly() {
        let (batch, m, k, n) = (5usize, 6, 9, 7);
        let mut rng = crate::rng::SeededRng::new(99);
        let a: Vec<f32> = (0..batch * m * k).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..batch * k * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let mut got = vec![0.0f32; batch * m * n];
        gemm_batched(&a, &b, &mut got, batch, m, k, n);
        for s in 0..batch {
            let at = Tensor::from_vec(a[s * m * k..(s + 1) * m * k].to_vec(), &[m, k]);
            let bt = Tensor::from_vec(b[s * k * n..(s + 1) * k * n].to_vec(), &[k, n]);
            let want = gemm(&at, Transpose::No, &bt, Transpose::No);
            assert_eq!(
                &got[s * m * n..(s + 1) * m * n],
                want.data(),
                "batch item {s} must match a standalone gemm bit-for-bit"
            );
        }
    }

    #[test]
    fn batched_threaded_split_matches_serial() {
        // large enough that batch*m*n*k crosses the threshold
        let (batch, m, k, n) = (16usize, 24, 24, 32);
        assert!(batch * m * k * n >= PARALLEL_THRESHOLD);
        let mut rng = crate::rng::SeededRng::new(123);
        let a: Vec<f32> = (0..batch * m * k).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let b: Vec<f32> = (0..batch * k * n).map(|_| rng.uniform(-1.0, 1.0)).collect();
        let mut par = vec![0.0f32; batch * m * n];
        gemm_batched(&a, &b, &mut par, batch, m, k, n);
        let mut ser = vec![0.0f32; batch * m * n];
        with_gemm_thread_cap(1, || gemm_batched(&a, &b, &mut ser, batch, m, k, n));
        assert_eq!(par, ser, "batch split must not change any element");
    }
}
