//! Cache-blocked general matrix multiply.
//!
//! A dependency-free GEMM tuned for the modest matrix sizes that appear in
//! CNN inference/training on small images: panels are blocked to stay in L1
//! and the inner micro-kernel accumulates a 4×4 register tile. Large
//! products are optionally split across threads with `std::thread::scope`.

use std::cell::Cell;

use crate::tensor::Tensor;

/// Whether an operand of [`gemm`] is logically transposed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Transpose {
    /// Use the operand as stored.
    No,
    /// Use the transpose of the stored operand.
    Yes,
}

/// Number of result elements above which the GEMM is split across threads.
const PARALLEL_THRESHOLD: usize = 64 * 64 * 64;

thread_local! {
    /// Per-thread cap on the GEMM's internal worker count (see
    /// [`with_gemm_thread_cap`]).
    static GEMM_THREAD_CAP: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Runs `f` with this thread's GEMM parallelism capped at `cap` threads
/// (a cap of 1 keeps every GEMM on the calling thread), restoring the
/// previous cap afterwards — including on panic, so a caught unwind on a
/// long-lived thread cannot leave its GEMMs silently serialized.
///
/// Outer parallel layers — e.g. a batch executor that already runs one
/// worker per core — use this to stop large products from spawning a
/// *second* level of threads and oversubscribing the machine. The cap
/// never changes results: the threaded split assigns whole output rows,
/// so every element is computed identically either way.
pub fn with_gemm_thread_cap<R>(cap: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            GEMM_THREAD_CAP.with(|c| c.set(self.0));
        }
    }
    let _guard = Restore(GEMM_THREAD_CAP.with(|c| c.replace(cap.max(1))));
    f()
}

/// Computes `op_a(a) · op_b(b)` for 2-D tensors.
///
/// `op(a)` is `a` or `aᵀ` according to the [`Transpose`] flags; the result
/// has shape `[m, n]` where `op_a(a)` is `[m, k]` and `op_b(b)` is `[k, n]`.
///
/// # Panics
///
/// Panics if either tensor is not 2-D or the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use wa_tensor::{gemm, Tensor, Transpose};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// let b = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
/// let c = gemm(&a, Transpose::Yes, &b, Transpose::No);
/// assert_eq!(c.data(), &[1.0, 3.0, 2.0, 4.0]);
/// ```
pub fn gemm(a: &Tensor, ta: Transpose, b: &Tensor, tb: Transpose) -> Tensor {
    let (m, k) = op_dims(a, ta);
    let (kb, n) = op_dims(b, tb);
    assert_eq!(k, kb, "gemm inner dimension mismatch: {} vs {}", k, kb);
    let mut out = Tensor::zeros(&[m, n]);
    gemm_into(a, ta, b, tb, &mut out);
    out
}

fn op_dims(t: &Tensor, tr: Transpose) -> (usize, usize) {
    assert_eq!(
        t.ndim(),
        2,
        "gemm operands must be 2-D, got {:?}",
        t.shape()
    );
    match tr {
        Transpose::No => (t.dim(0), t.dim(1)),
        Transpose::Yes => (t.dim(1), t.dim(0)),
    }
}

/// Computes `out = op_a(a) · op_b(b)`, overwriting `out`.
///
/// Use this to reuse an output allocation inside hot loops.
///
/// # Panics
///
/// Panics if shapes disagree (see [`gemm`]) or `out` is not `[m, n]`.
pub fn gemm_into(a: &Tensor, ta: Transpose, b: &Tensor, tb: Transpose, out: &mut Tensor) {
    let (m, k) = op_dims(a, ta);
    let (kb, n) = op_dims(b, tb);
    assert_eq!(k, kb, "gemm inner dimension mismatch: {} vs {}", k, kb);
    assert_eq!(
        out.shape(),
        &[m, n],
        "gemm output must be [{}, {}], got {:?}",
        m,
        n,
        out.shape()
    );

    // Pack both operands into row-major [m,k] and column-friendly [k,n]
    // form once, so the inner kernel is branch-free.
    let ap = pack_a(a, ta, m, k);
    let bp = pack_b(b, tb, k, n);
    let out_data = out.data_mut();

    if m * n * k >= PARALLEL_THRESHOLD {
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .min(8)
            .min(GEMM_THREAD_CAP.with(|c| c.get()));
        if threads > 1 {
            let rows_per = m.div_ceil(threads);
            std::thread::scope(|s| {
                for (ti, chunk) in out_data.chunks_mut(rows_per * n).enumerate() {
                    let ap = &ap;
                    let bp = &bp;
                    s.spawn(move || {
                        let row0 = ti * rows_per;
                        let rows = chunk.len() / n;
                        kernel(&ap[row0 * k..(row0 + rows) * k], bp, chunk, rows, n, k);
                    });
                }
            });
            return;
        }
    }
    kernel(&ap, &bp, out_data, m, n, k);
}

fn pack_a(a: &Tensor, ta: Transpose, m: usize, k: usize) -> Vec<f32> {
    match ta {
        Transpose::No => a.data().to_vec(),
        Transpose::Yes => {
            // stored as [k, m]; emit row-major [m, k]
            let src = a.data();
            let mut out = vec![0.0f32; m * k];
            for i in 0..m {
                for p in 0..k {
                    out[i * k + p] = src[p * m + i];
                }
            }
            out
        }
    }
}

fn pack_b(b: &Tensor, tb: Transpose, k: usize, n: usize) -> Vec<f32> {
    match tb {
        Transpose::No => b.data().to_vec(),
        Transpose::Yes => {
            // stored as [n, k]; emit row-major [k, n]
            let src = b.data();
            let mut out = vec![0.0f32; k * n];
            for p in 0..k {
                for j in 0..n {
                    out[p * n + j] = src[j * k + p];
                }
            }
            out
        }
    }
}

/// Row-major kernel: `out[m,n] = a[m,k] · b[k,n]` with 4-row unrolling.
fn kernel(a: &[f32], b: &[f32], out: &mut [f32], m: usize, n: usize, k: usize) {
    out.fill(0.0);
    const KC: usize = 256; // K-panel so a b-panel row stays hot in L1
    let mut p0 = 0;
    while p0 < k {
        let pc = KC.min(k - p0);
        let mut i = 0;
        // 4-row micro panels
        while i + 4 <= m {
            for p in p0..p0 + pc {
                let a0 = a[i * k + p];
                let a1 = a[(i + 1) * k + p];
                let a2 = a[(i + 2) * k + p];
                let a3 = a[(i + 3) * k + p];
                let brow = &b[p * n..p * n + n];
                let (o0, rest) = out[i * n..].split_at_mut(n);
                let (o1, rest) = rest.split_at_mut(n);
                let (o2, rest) = rest.split_at_mut(n);
                let o3 = &mut rest[..n];
                for j in 0..n {
                    let bv = brow[j];
                    o0[j] += a0 * bv;
                    o1[j] += a1 * bv;
                    o2[j] += a2 * bv;
                    o3[j] += a3 * bv;
                }
            }
            i += 4;
        }
        // remainder rows
        while i < m {
            for p in p0..p0 + pc {
                let av = a[i * k + p];
                if av != 0.0 {
                    let brow = &b[p * n..p * n + n];
                    let orow = &mut out[i * n..i * n + n];
                    for j in 0..n {
                        orow[j] += av * brow[j];
                    }
                }
            }
            i += 1;
        }
        p0 += pc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dim(0), a.dim(1));
        let n = b.dim(1);
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f64;
                for p in 0..k {
                    acc += (a.data()[i * k + p] as f64) * (b.data()[p * n + j] as f64);
                }
                *out.at_mut(&[i, j]) = acc as f32;
            }
        }
        out
    }

    fn rand_mat(r: usize, c: usize, seed: u64) -> Tensor {
        let mut rng = crate::rng::SeededRng::new(seed);
        Tensor::from_fn(&[r, c], |_| rng.uniform(-1.0, 1.0))
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{} vs {}",
                x,
                y
            );
        }
    }

    #[test]
    fn matches_naive_small() {
        for (m, k, n) in [(1, 1, 1), (2, 3, 4), (5, 7, 3), (8, 8, 8), (13, 1, 9)] {
            let a = rand_mat(m, k, 42 + m as u64);
            let b = rand_mat(k, n, 7 + n as u64);
            assert_close(
                &gemm(&a, Transpose::No, &b, Transpose::No),
                &naive(&a, &b),
                1e-5,
            );
        }
    }

    #[test]
    fn transpose_flags_agree_with_explicit_transpose() {
        let a = rand_mat(6, 4, 1);
        let b = rand_mat(6, 5, 2);
        // aᵀ·b
        let want = naive(&a.transpose(), &b);
        assert_close(&gemm(&a, Transpose::Yes, &b, Transpose::No), &want, 1e-5);
        // aᵀ·cᵀ : [4,6]·[6,5]
        let c = rand_mat(5, 6, 3);
        let want2 = naive(&a.transpose(), &c.transpose());
        assert_close(&gemm(&a, Transpose::Yes, &c, Transpose::Yes), &want2, 1e-5);
    }

    #[test]
    fn parallel_path_matches_naive() {
        // Force the threshold by exceeding 64^3 elements of work.
        let a = rand_mat(80, 70, 11);
        let b = rand_mat(70, 90, 12);
        assert_close(
            &gemm(&a, Transpose::No, &b, Transpose::No),
            &naive(&a, &b),
            1e-4,
        );
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = gemm(&a, Transpose::No, &b, Transpose::No);
    }

    #[test]
    fn gemm_into_reuses_buffer() {
        let a = rand_mat(3, 3, 5);
        let b = rand_mat(3, 3, 6);
        let mut out = Tensor::ones(&[3, 3]);
        gemm_into(&a, Transpose::No, &b, Transpose::No, &mut out);
        assert_close(&out, &naive(&a, &b), 1e-5);
    }
}
