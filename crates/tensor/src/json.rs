//! A minimal self-contained JSON value type, writer and parser.
//!
//! The workspace runs in offline environments, so instead of an external
//! serialization framework every persisted artifact (checkpoints, bench
//! records) goes through this small codec. It supports exactly the JSON
//! the workspace emits: objects, arrays, finite numbers, strings, bools
//! and null. Non-finite numbers serialize as `null`, matching the common
//! JSON convention.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// Error raised by [`Json::parse`].
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<f32> for Json {
    fn from(v: f32) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, V: Into<Json>>(pairs: impl IntoIterator<Item = (K, V)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Builds an array from values.
    pub fn arr<V: Into<Json>>(items: impl IntoIterator<Item = V>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Looks up a key in an object (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Object pairs as a map (convenience for lookups in tests).
    pub fn to_map(&self) -> Option<BTreeMap<&str, &Json>> {
        self.as_obj()
            .map(|pairs| pairs.iter().map(|(k, v)| (k.as_str(), v)).collect())
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1)
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                write_str(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, indent, depth + 1)
            }),
        }
    }

    /// Parses a JSON document, requiring the whole input to be consumed.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_pretty())
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i);
    }
    if len > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * depth));
        }
    }
    out.push(close);
}

/// Nesting-depth bound for the recursive-descent parser: untrusted
/// input deeper than this is rejected as an error instead of
/// overflowing the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than the supported maximum"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.depth += 1;
        let out = self.array_body();
        self.depth -= 1;
        out
    }

    fn array_body(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.depth += 1;
        let out = self.object_body();
        self.depth -= 1;
        out
    }

    fn object_body(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // workspace's writer; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("invalid UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .map(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        match text.parse::<f64>() {
            // `1e999` parses to infinity; Json::Num documents finite
            // numbers only, so overflowing literals are rejected too
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            _ => Err(JsonError {
                offset: start,
                message: format!("invalid number `{text}`"),
            }),
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Json::obj([
            ("name", Json::from("winograd")),
            ("sizes", Json::arr([2usize, 4, 6])),
            ("acc", Json::from(0.925f64)),
            ("flex", Json::from(true)),
            ("none", Json::Null),
        ]);
        for text in [doc.to_string_pretty(), doc.to_string_compact()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\\n\" : [ 1 , -2.5e1 , \"\\u0041\" ] } ").unwrap();
        let arr = v.get("a\n").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("A"));
    }

    #[test]
    fn rejects_excessive_nesting_without_crashing() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // the bound itself is generous: 100 levels parse fine
        let ok = "[".repeat(100) + "1" + &"]".repeat(100);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn rejects_non_finite_number_literals() {
        assert!(Json::parse("1e999").is_err());
        assert!(Json::parse("-1e999").is_err());
        assert!(Json::parse("1e308").is_ok());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::from(3usize).to_string_compact(), "3");
        assert_eq!(Json::from(-1.5f64).to_string_compact(), "-1.5");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn unicode_strings_roundtrip() {
        let doc = Json::from("Aᵀ[(G·g·Gᵀ) ⊙ (Bᵀ·d·B)]A");
        assert_eq!(Json::parse(&doc.to_string_compact()).unwrap(), doc);
    }
}
