//! Packed integer GEMM: `i8×i8 → i32` accumulation for the true INT8
//! inference path.
//!
//! The kernel mirrors the f32 GEMM's GotoBLAS shape (`B` panel-packed
//! into NR-wide strips, KC×MC cache blocking, a const-generic register
//! tile) but widens both operands to `i16` at pack time so the hot loop
//! can run on `pmaddwd` (`_mm_madd_epi16`): one instruction computes
//! eight `i16·i16` products and pairwise-adds them into four `i32`
//! lanes. `pmaddwd` is baseline SSE2, available on every `x86_64`
//! target without feature detection; other architectures take a scalar
//! loop over the identical packed layout.
//!
//! Unlike the f32 kernel there is **no tolerance story**: `i8·i8`
//! products and `i32` additions are exact, so any blocking, panel or
//! thread split computes bit-identical results. `gemm_i8` is therefore
//! pinned *exactly equal* to a naive `i32` triple loop
//! (`tests/gemm_i8_regression.rs`), for every shape and worker count.
//!
//! Accumulator range: each pairwise `pmaddwd` term is at most
//! `2·127² < 2¹⁶`, so the `i32` accumulator is exact for any
//! `k ≤ 2³¹/2¹⁵` — far beyond every convolution this crate lowers
//! (`k = C·r²` or `k = C`).

use crate::gemm::{gemm_threads, Transpose, PARALLEL_THRESHOLD};
use std::cell::Cell;
use std::sync::{Arc, OnceLock};

/// Columns per packed `B` panel (and per register tile).
const NR: usize = 8;

/// Rows per register tile: `MR·NR` i32 accumulators fill 8 SSE registers.
const MR: usize = 4;

/// K-panel depth in **i16 elements** (always even, so panels split on
/// `pmaddwd` pair boundaries). One `B` strip is `KC·NR·2` bytes = 8 KiB,
/// L1-resident across a whole row block.
const KC: usize = 512;

/// Rows per `A` block per K-panel pass (`MC·KC` i16 = 64 KiB from L2).
const MC: usize = 64;

thread_local! {
    /// Reused scratch for widening-packing `A` rows.
    static PACK_A_I16: Cell<Vec<i16>> = const { Cell::new(Vec::new()) };

    /// Reused scratch for panel-packing `B`.
    static PACK_B_I16: Cell<Vec<i16>> = const { Cell::new(Vec::new()) };
}

/// Bumps `wa_gemm_i8_calls_total{kind=...}` through a per-kind cached
/// handle: one relaxed atomic add per GEMM call.
fn count_gemm_i8_call(cell: &OnceLock<Arc<wa_obs::Counter>>, kind: &'static str) {
    cell.get_or_init(|| {
        wa_obs::counter_with(
            "wa_gemm_i8_calls_total",
            "Integer (i8×i8→i32) GEMM invocations, by kind (single 2-D products vs batched Winograd-coordinate products).",
            &[("kind", kind)],
        )
    })
    .inc();
}

/// Computes `op_a(a) · op_b(b)` over `i8` operands with exact `i32`
/// accumulation, writing the `[m, n]` product into `out`.
///
/// `op_a(a)` is `[m, k]` and `op_b(b)` is `[k, n]` after applying the
/// [`Transpose`] flags (a transposed operand is stored `[k, m]` /
/// `[n, k]`). Both operands are repacked — `A` widened to row-major
/// `i16`, `B` into NR-wide pair-interleaved panels — so the layout in
/// memory never constrains the caller.
///
/// The product is **exact**: integer arithmetic makes every blocking
/// and thread split bit-identical to the naive `i32` triple loop, which
/// the regression suite asserts with `==`. Large products split rows
/// across threads under the ambient
/// [`with_gemm_thread_cap`](crate::with_gemm_thread_cap), exactly like
/// the f32 kernel.
///
/// # Panics
///
/// Panics if a slice length disagrees with the stated dimensions.
#[allow(clippy::too_many_arguments)] // mirrors gemm()'s (operand, flag) pairs plus explicit dims
pub fn gemm_i8(
    a: &[i8],
    ta: Transpose,
    b: &[i8],
    tb: Transpose,
    m: usize,
    k: usize,
    n: usize,
    out: &mut [i32],
) {
    static CALLS: OnceLock<Arc<wa_obs::Counter>> = OnceLock::new();
    count_gemm_i8_call(&CALLS, "single");
    assert_eq!(a.len(), m * k, "gemm_i8 lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm_i8 rhs length mismatch");
    assert_eq!(out.len(), m * n, "gemm_i8 output length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0);
        return;
    }

    let mut pa = PACK_A_I16.with(|c| c.take());
    let mut pb = PACK_B_I16.with(|c| c.take());
    let kk = pack_a_i16(a, ta, m, k, &mut pa);
    pack_b_panels_i16(b, tb, k, n, kk, &mut pb);

    let threads = if m * n * k >= PARALLEL_THRESHOLD {
        gemm_threads()
    } else {
        1
    };
    if threads > 1 {
        // MR-aligned row chunks so no register tile spans two workers
        let rows_per = m.div_ceil(threads).next_multiple_of(MR);
        let (pa_ref, pb_ref) = (&pa[..], &pb[..]);
        std::thread::scope(|s| {
            for (ti, chunk) in out.chunks_mut(rows_per * n).enumerate() {
                let row0 = ti * rows_per;
                s.spawn(move || {
                    let rows = chunk.len() / n;
                    kernel_rows(&pa_ref[row0 * kk..(row0 + rows) * kk], kk, pb_ref, chunk, n);
                });
            }
        });
    } else {
        kernel_rows(&pa, kk, &pb, out, n);
    }

    PACK_A_I16.with(|c| c.set(pa));
    PACK_B_I16.with(|c| c.set(pb));
}

/// Runs a stack of `batch` equal-shape integer products
/// `out[s] = a[s]·b[s]` (`a[s]` `[m, k]`, `b[s]` `[k, n]`, both
/// untransposed row-major) — the Winograd Hadamard stage as `n²`
/// per-coordinate GEMMs. The batch is split across threads (respecting
/// [`with_gemm_thread_cap`](crate::with_gemm_thread_cap)); integer math
/// keeps every element bit-identical to [`gemm_i8`] run per item.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated dimensions.
pub fn gemm_i8_batched(
    a: &[i8],
    b: &[i8],
    out: &mut [i32],
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    static CALLS: OnceLock<Arc<wa_obs::Counter>> = OnceLock::new();
    count_gemm_i8_call(&CALLS, "batched");
    assert_eq!(
        a.len(),
        batch * m * k,
        "gemm_i8_batched lhs length mismatch"
    );
    assert_eq!(
        b.len(),
        batch * k * n,
        "gemm_i8_batched rhs length mismatch"
    );
    assert_eq!(
        out.len(),
        batch * m * n,
        "gemm_i8_batched output length mismatch"
    );
    if batch == 0 || m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0);
        return;
    }

    let threads = if batch * m * n * k >= PARALLEL_THRESHOLD {
        gemm_threads().min(batch)
    } else {
        1
    };
    if threads > 1 {
        let per = batch.div_ceil(threads);
        std::thread::scope(|s| {
            for (ti, ochunk) in out.chunks_mut(per * m * n).enumerate() {
                let s0 = ti * per;
                s.spawn(move || batch_range(a, b, ochunk, s0, m, k, n));
            }
        });
    } else {
        batch_range(a, b, out, 0, m, k, n);
    }
}

/// Packs and multiplies items `[s0, s0 + ochunk/(m·n))` of the batch on
/// the calling thread (each worker owns its thread-local scratch).
fn batch_range(a: &[i8], b: &[i8], ochunk: &mut [i32], s0: usize, m: usize, k: usize, n: usize) {
    let mut pa = PACK_A_I16.with(|c| c.take());
    let mut pb = PACK_B_I16.with(|c| c.take());
    for (i, o) in ochunk.chunks_mut(m * n).enumerate() {
        let s = s0 + i;
        let kk = pack_a_i16(&a[s * m * k..(s + 1) * m * k], Transpose::No, m, k, &mut pa);
        pack_b_panels_i16(
            &b[s * k * n..(s + 1) * k * n],
            Transpose::No,
            k,
            n,
            kk,
            &mut pb,
        );
        kernel_rows(&pa, kk, &pb, o, n);
    }
    PACK_A_I16.with(|c| c.set(pa));
    PACK_B_I16.with(|c| c.set(pb));
}

/// A prepacked batched **left** operand for [`gemm_i8_prepacked`]:
/// `batch` stacked `[m, k]` i8 blocks widened once into the row-major
/// `[m, kk]` i16 layout the kernel consumes (`kk` rounds `k` up to
/// even for `pmaddwd` pairing).
///
/// [`gemm_i8_batched`] re-packs its operands on every call — the right
/// choice when both sides change per call, pure overhead when one side
/// is static. The Winograd integer middle multiplies the same memoized
/// filter (up to `n²·K·C ≈ 9.4M` elements per deep ResNet layer) against
/// fresh activations on every inference; packing it once at
/// filter-cache build time removes that widening traffic from the hot
/// path entirely.
#[derive(Clone, Debug)]
pub struct PackedAI8 {
    data: Vec<i16>,
    batch: usize,
    m: usize,
    k: usize,
    kk: usize,
}

impl PackedAI8 {
    /// Widens row-major `[batch, m, k]` i8 into the packed layout.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != batch·m·k`.
    pub fn pack(a: &[i8], batch: usize, m: usize, k: usize) -> PackedAI8 {
        assert_eq!(a.len(), batch * m * k, "PackedAI8 operand length mismatch");
        let kk = k.next_multiple_of(2);
        let mut data = vec![0i16; batch * m * kk];
        for (src, dst) in a.chunks_exact(k).zip(data.chunks_exact_mut(kk)) {
            for (d, &s) in dst[..k].iter_mut().zip(src) {
                *d = s as i16;
            }
        }
        PackedAI8 {
            data,
            batch,
            m,
            k,
            kk,
        }
    }

    /// Batch count.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Rows per batch item.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Inner (contraction) dimension.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// A prepacked batched **right** operand for [`gemm_i8_prepacked`]:
/// `batch` stacked `[k, n]` i8 blocks in the NR-wide pair-interleaved
/// panel layout of the `pmaddwd` kernel.
///
/// Besides wholesale packing ([`PackedBI8::pack`]), the buffer can be
/// filled element-wise through [`PackedBI8::slot`] — that lets a
/// producer that *computes* the operand (e.g. the fused quantized
/// Winograd input transform) write each value straight into its packed
/// position, skipping the row-major intermediate and the separate
/// packing pass.
#[derive(Clone, Debug)]
pub struct PackedBI8 {
    data: Vec<i16>,
    batch: usize,
    k: usize,
    n: usize,
    kk: usize,
    /// i16 elements per batch item: `n.div_ceil(NR)·kk·NR`.
    panel_stride: usize,
}

impl PackedBI8 {
    /// An all-zero packed operand (every logical element 0), ready for
    /// element-wise filling through [`PackedBI8::slot`].
    pub fn zeroed(batch: usize, k: usize, n: usize) -> PackedBI8 {
        let kk = k.next_multiple_of(2);
        let panel_stride = n.div_ceil(NR) * kk * NR;
        PackedBI8 {
            data: vec![0i16; batch * panel_stride],
            batch,
            k,
            n,
            kk,
            panel_stride,
        }
    }

    /// Packs row-major `[batch, k, n]` i8 into the panel layout.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != batch·k·n`.
    pub fn pack(b: &[i8], batch: usize, k: usize, n: usize) -> PackedBI8 {
        assert_eq!(b.len(), batch * k * n, "PackedBI8 operand length mismatch");
        let mut packed = PackedBI8::zeroed(batch, k, n);
        for s in 0..batch {
            for (p, row) in b[s * k * n..(s + 1) * k * n].chunks_exact(n).enumerate() {
                for (j, &v) in row.iter().enumerate() {
                    *packed.slot(s, p, j) = v as i16;
                }
            }
        }
        packed
    }

    /// The packed cell holding logical element `B[s][p, j]` (batch item
    /// `s`, row `p`, column `j`). Values must stay in i8 range — the
    /// kernel's exactness contract assumes i8 operands widened to i16.
    ///
    /// # Panics
    ///
    /// Panics (via slice indexing) if the coordinates are out of range.
    #[inline]
    pub fn slot(&mut self, s: usize, p: usize, j: usize) -> &mut i16 {
        debug_assert!(s < self.batch && p < self.k && j < self.n);
        let idx = s * self.panel_stride
            + (j / NR) * self.kk * NR
            + (p / 2) * NR * 2
            + (j % NR) * 2
            + (p & 1);
        &mut self.data[idx]
    }

    /// Writes logical elements `B[s][p, j]` for `s = 0..batch` in one
    /// call: `vals[s]` lands where `slot(s, p, j)` points. Within one
    /// `(p, j)` cell the batch items differ only by the panel stride, so
    /// this costs one address computation plus a strided store per item
    /// — the fast path for producers that generate a value per batch
    /// item at a time (e.g. the per-tap quantizer of the fused Winograd
    /// input transform, whose scalar `slot` calls in the hot loop would
    /// otherwise block vectorization of the quantize pass feeding it).
    ///
    /// # Panics
    ///
    /// Panics if `vals.len() != batch` or the coordinates are out of
    /// range.
    #[inline]
    pub fn write_taps(&mut self, p: usize, j: usize, vals: &[i16]) {
        assert_eq!(vals.len(), self.batch, "write_taps batch mismatch");
        assert!(
            p < self.k && j < self.n,
            "write_taps coordinates out of range"
        );
        let base = (j / NR) * self.kk * NR + (p / 2) * NR * 2 + (j % NR) * 2 + (p & 1);
        for (item, &v) in self.data.chunks_exact_mut(self.panel_stride).zip(vals) {
            item[base] = v;
        }
    }

    /// Unpacks back to row-major `[batch, k, n]` i8 — the verification
    /// hook for tests that fill the buffer through [`PackedBI8::slot`]
    /// (values written there are i8-range by contract, so the narrowing
    /// cast is lossless).
    pub fn unpack(&self) -> Vec<i8> {
        let mut out = vec![0i8; self.batch * self.k * self.n];
        let npanels = self.n.div_ceil(NR);
        for s in 0..self.batch {
            let item = &self.data[s * self.panel_stride..(s + 1) * self.panel_stride];
            for q in 0..npanels {
                let j0 = q * NR;
                let nr = NR.min(self.n - j0);
                let panel = &item[q * self.kk * NR..(q + 1) * self.kk * NR];
                for p in 0..self.k {
                    for jj in 0..nr {
                        out[(s * self.k + p) * self.n + j0 + jj] =
                            panel[(p / 2) * NR * 2 + jj * 2 + (p & 1)] as i8;
                    }
                }
            }
        }
        out
    }

    /// Batch count.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Inner (contraction) dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Columns per batch item.
    pub fn n(&self) -> usize {
        self.n
    }
}

/// [`gemm_i8_batched`] with **both operands prepacked**: runs the stack
/// of `batch` products `out[s] = a[s]·b[s]` straight on the packed
/// buffers — no packing, widening or scratch inside the call. Integer
/// accumulation keeps every element bit-identical to [`gemm_i8`] run
/// per item; large stacks split batch items across threads under the
/// ambient [`with_gemm_thread_cap`](crate::with_gemm_thread_cap).
///
/// # Panics
///
/// Panics if the operands disagree on batch count or contraction
/// dimension, or if `out.len() != batch·m·n`.
pub fn gemm_i8_prepacked(pa: &PackedAI8, pb: &PackedBI8, out: &mut [i32]) {
    static CALLS: OnceLock<Arc<wa_obs::Counter>> = OnceLock::new();
    count_gemm_i8_call(&CALLS, "prepacked");
    assert_eq!(pa.batch, pb.batch, "gemm_i8_prepacked batch mismatch");
    assert_eq!(pa.k, pb.k, "gemm_i8_prepacked contraction mismatch");
    let (batch, m, n, kk) = (pa.batch, pa.m, pb.n, pa.kk);
    assert_eq!(
        out.len(),
        batch * m * n,
        "gemm_i8_prepacked output length mismatch"
    );
    if batch == 0 || m == 0 || n == 0 {
        return;
    }
    if pa.k == 0 {
        out.fill(0);
        return;
    }

    let run = |ochunk: &mut [i32], s0: usize| {
        for (i, o) in ochunk.chunks_mut(m * n).enumerate() {
            let s = s0 + i;
            kernel_rows(
                &pa.data[s * m * kk..(s + 1) * m * kk],
                kk,
                &pb.data[s * pb.panel_stride..(s + 1) * pb.panel_stride],
                o,
                n,
            );
        }
    };
    let threads = if batch * m * n * pa.k >= PARALLEL_THRESHOLD {
        gemm_threads().min(batch)
    } else {
        1
    };
    if threads > 1 {
        let per = batch.div_ceil(threads);
        let run = &run;
        std::thread::scope(|s| {
            for (ti, ochunk) in out.chunks_mut(per * m * n).enumerate() {
                s.spawn(move || run(ochunk, ti * per));
            }
        });
    } else {
        run(out, 0);
    }
}

/// Widens `op(a)` to row-major `i16` `[m, kk]` where `kk` rounds `k` up
/// to even (`pmaddwd` consumes pairs; the pad lane is 0). Returns `kk`.
fn pack_a_i16(src: &[i8], ta: Transpose, m: usize, k: usize, buf: &mut Vec<i16>) -> usize {
    let kk = k.next_multiple_of(2);
    buf.clear();
    buf.resize(m * kk, 0);
    match ta {
        Transpose::No => {
            for i in 0..m {
                let row = &src[i * k..(i + 1) * k];
                let dst = &mut buf[i * kk..i * kk + k];
                for (d, &s) in dst.iter_mut().zip(row) {
                    *d = s as i16;
                }
            }
        }
        Transpose::Yes => {
            // src is [k, m]; walk it row-by-row for sequential reads
            for (p, row) in src.chunks_exact(m).enumerate() {
                for (i, &s) in row.iter().enumerate() {
                    buf[i * kk + p] = s as i16;
                }
            }
        }
    }
    kk
}

/// Packs `op(b)` (`[k, n]` logical) into `n.div_ceil(NR)` panels of
/// widened `i16`, each `[kk/2, NR, 2]`: pair `p` of panel `q` stores
/// `B[2p, j]`, `B[2p+1, j]` adjacently for the NR columns `j` of the
/// panel — exactly the operand order `pmaddwd` consumes. Right-edge
/// columns and the odd-`k` pad lane are zero.
fn pack_b_panels_i16(src: &[i8], tb: Transpose, k: usize, n: usize, kk: usize, buf: &mut Vec<i16>) {
    let npanels = n.div_ceil(NR);
    buf.clear();
    buf.resize(npanels * kk * NR, 0);
    for q in 0..npanels {
        let j0 = q * NR;
        let nr = NR.min(n - j0);
        let panel = &mut buf[q * kk * NR..(q + 1) * kk * NR];
        match tb {
            Transpose::No => {
                for (p, row) in src.chunks_exact(n).enumerate() {
                    for (jj, &s) in row[j0..j0 + nr].iter().enumerate() {
                        panel[(p / 2) * NR * 2 + jj * 2 + (p & 1)] = s as i16;
                    }
                }
            }
            Transpose::Yes => {
                // src is [n, k]; column j of B is row j of src
                for jj in 0..nr {
                    let col = &src[(j0 + jj) * k..(j0 + jj + 1) * k];
                    for (p, &s) in col.iter().enumerate() {
                        panel[(p / 2) * NR * 2 + jj * 2 + (p & 1)] = s as i16;
                    }
                }
            }
        }
    }
}

/// Multiplies packed `A` rows (`[rows, kk]` i16) by panel-packed `bp`
/// into `out [rows, n]`, KC×MC blocked. Integer accumulation is exact,
/// so the blocking order is unobservable.
fn kernel_rows(a: &[i16], kk: usize, bp: &[i16], out: &mut [i32], n: usize) {
    let rows = a.len().checked_div(kk).unwrap_or(0);
    let npanels = n.div_ceil(NR);
    let mut pc = 0;
    while pc < kk {
        let kc = KC.min(kk - pc);
        let accumulate = pc > 0;
        let mut r0 = 0;
        while r0 < rows {
            let mc = MC.min(rows - r0);
            for q in 0..npanels {
                let j0 = q * NR;
                let nr = NR.min(n - j0);
                let strip = &bp[q * kk * NR + pc * NR..q * kk * NR + (pc + kc) * NR];
                let mut i = r0;
                while i + MR <= r0 + mc {
                    micro::<MR>(
                        &a[i * kk + pc..],
                        kk,
                        kc,
                        strip,
                        &mut out[i * n..],
                        n,
                        j0,
                        nr,
                        accumulate,
                    );
                    i += MR;
                }
                match r0 + mc - i {
                    1 => micro::<1>(
                        &a[i * kk + pc..],
                        kk,
                        kc,
                        strip,
                        &mut out[i * n..],
                        n,
                        j0,
                        nr,
                        accumulate,
                    ),
                    2 => micro::<2>(
                        &a[i * kk + pc..],
                        kk,
                        kc,
                        strip,
                        &mut out[i * n..],
                        n,
                        j0,
                        nr,
                        accumulate,
                    ),
                    3 => micro::<3>(
                        &a[i * kk + pc..],
                        kk,
                        kc,
                        strip,
                        &mut out[i * n..],
                        n,
                        j0,
                        nr,
                        accumulate,
                    ),
                    _ => {}
                }
            }
            r0 += mc;
        }
        pc += kc;
    }
}

/// `R×NR` register tile over one K-strip: `out[i, j0+jj] (+)= Σ_p
/// a[i, p]·b[p, j0+jj]`. `a` starts at the tile's first row and K-offset
/// with row stride `kk`; `strip` holds `kc/2` interleaved `pmaddwd`
/// pairs; `out` starts at the tile's first row with row stride `n`.
#[allow(clippy::too_many_arguments)] // the flattened tile coordinates of kernel_rows
fn micro<const R: usize>(
    a: &[i16],
    kk: usize,
    kc: usize,
    strip: &[i16],
    out: &mut [i32],
    n: usize,
    j0: usize,
    nr: usize,
    accumulate: bool,
) {
    let mut acc = [[0i32; NR]; R];
    let pairs = kc / 2;

    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: SSE2 is baseline on x86_64; every load/store below
        // stays inside the checked slice bounds (`strip` holds
        // `pairs·NR·2` i16, each `acc` row is NR consecutive i32).
        unsafe {
            use std::arch::x86_64::{
                __m128i, _mm_add_epi32, _mm_loadu_si128, _mm_madd_epi16, _mm_set1_epi32,
                _mm_storeu_si128,
            };
            let mut vacc = [[_mm_set1_epi32(0); 2]; R];
            for p in 0..pairs {
                let bptr = strip.as_ptr().add(p * NR * 2);
                let b0 = _mm_loadu_si128(bptr as *const __m128i);
                let b1 = _mm_loadu_si128(bptr.add(8) as *const __m128i);
                for (i, row) in vacc.iter_mut().enumerate() {
                    let a0 = *a.as_ptr().add(i * kk + 2 * p) as u16 as u32;
                    let a1 = *a.as_ptr().add(i * kk + 2 * p + 1) as u16 as u32;
                    let aw = _mm_set1_epi32(((a1 << 16) | a0) as i32);
                    row[0] = _mm_add_epi32(row[0], _mm_madd_epi16(aw, b0));
                    row[1] = _mm_add_epi32(row[1], _mm_madd_epi16(aw, b1));
                }
            }
            for (i, row) in vacc.iter().enumerate() {
                _mm_storeu_si128(acc[i].as_mut_ptr() as *mut __m128i, row[0]);
                _mm_storeu_si128(acc[i].as_mut_ptr().add(4) as *mut __m128i, row[1]);
            }
        }
    }

    #[cfg(not(target_arch = "x86_64"))]
    {
        for p in 0..pairs {
            let pair = &strip[p * NR * 2..(p + 1) * NR * 2];
            for (i, row) in acc.iter_mut().enumerate() {
                let a0 = a[i * kk + 2 * p] as i32;
                let a1 = a[i * kk + 2 * p + 1] as i32;
                for (jj, cell) in row.iter_mut().enumerate() {
                    *cell += a0 * pair[jj * 2] as i32 + a1 * pair[jj * 2 + 1] as i32;
                }
            }
        }
    }

    for (i, row) in acc.iter().enumerate() {
        let dst = &mut out[i * n + j0..i * n + j0 + nr];
        if accumulate {
            for (d, &v) in dst.iter_mut().zip(row) {
                *d += v;
            }
        } else {
            dst.copy_from_slice(&row[..nr]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeededRng;
    use crate::with_gemm_thread_cap;

    /// Naive i32 triple loop over the logical (transpose-resolved) operands.
    fn naive(
        a: &[i8],
        ta: Transpose,
        b: &[i8],
        tb: Transpose,
        m: usize,
        k: usize,
        n: usize,
    ) -> Vec<i32> {
        let at = |i: usize, p: usize| match ta {
            Transpose::No => a[i * k + p] as i32,
            Transpose::Yes => a[p * m + i] as i32,
        };
        let bt = |p: usize, j: usize| match tb {
            Transpose::No => b[p * n + j] as i32,
            Transpose::Yes => b[j * k + p] as i32,
        };
        let mut out = vec![0i32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0i32;
                for p in 0..k {
                    s += at(i, p) * bt(p, j);
                }
                out[i * n + j] = s;
            }
        }
        out
    }

    fn rand_i8(rng: &mut SeededRng, len: usize) -> Vec<i8> {
        (0..len).map(|_| rng.uniform(-127.0, 128.0) as i8).collect()
    }

    #[test]
    fn matches_naive_small_shapes() {
        let mut rng = SeededRng::new(7);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 8, 8),
            (5, 9, 17),
            (13, 3, 2),
        ] {
            for ta in [Transpose::No, Transpose::Yes] {
                for tb in [Transpose::No, Transpose::Yes] {
                    let a = rand_i8(&mut rng, m * k);
                    let b = rand_i8(&mut rng, k * n);
                    let mut out = vec![0i32; m * n];
                    gemm_i8(&a, ta, &b, tb, m, k, n, &mut out);
                    assert_eq!(
                        out,
                        naive(&a, ta, &b, tb, m, k, n),
                        "{m}x{k}x{n} {ta:?} {tb:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn k_zero_clears_output() {
        let mut out = vec![42i32; 6];
        gemm_i8(&[], Transpose::No, &[], Transpose::No, 2, 0, 3, &mut out);
        assert_eq!(out, vec![0; 6]);
    }

    #[test]
    fn batched_matches_per_item() {
        let mut rng = SeededRng::new(11);
        let (batch, m, k, n) = (5usize, 4, 6, 9);
        let a = rand_i8(&mut rng, batch * m * k);
        let b = rand_i8(&mut rng, batch * k * n);
        let mut got = vec![0i32; batch * m * n];
        gemm_i8_batched(&a, &b, &mut got, batch, m, k, n);
        for s in 0..batch {
            let mut one = vec![0i32; m * n];
            gemm_i8(
                &a[s * m * k..(s + 1) * m * k],
                Transpose::No,
                &b[s * k * n..(s + 1) * k * n],
                Transpose::No,
                m,
                k,
                n,
                &mut one,
            );
            assert_eq!(&got[s * m * n..(s + 1) * m * n], &one[..], "item {s}");
        }
    }

    #[test]
    fn threaded_split_matches_serial() {
        let (m, k, n) = (130usize, 70, 64);
        assert!(m * k * n >= PARALLEL_THRESHOLD);
        let mut rng = SeededRng::new(23);
        let a = rand_i8(&mut rng, m * k);
        let b = rand_i8(&mut rng, k * n);
        let mut par = vec![0i32; m * n];
        gemm_i8(&a, Transpose::No, &b, Transpose::No, m, k, n, &mut par);
        let mut ser = vec![0i32; m * n];
        with_gemm_thread_cap(1, || {
            gemm_i8(&a, Transpose::No, &b, Transpose::No, m, k, n, &mut ser)
        });
        assert_eq!(par, ser, "thread split must not change any element");
        assert_eq!(par, naive(&a, Transpose::No, &b, Transpose::No, m, k, n));
    }

    #[test]
    fn prepacked_matches_batched_bit_for_bit() {
        let mut rng = SeededRng::new(31);
        // odd k exercises the pmaddwd pad lane, n=17 the edge panel
        for &(batch, m, k, n) in &[
            (1usize, 1usize, 1usize, 1usize),
            (4, 4, 6, 9),
            (36, 7, 3, 17),
            (2, 16, 512, 8),
        ] {
            let a = rand_i8(&mut rng, batch * m * k);
            let b = rand_i8(&mut rng, batch * k * n);
            let mut reference = vec![0i32; batch * m * n];
            gemm_i8_batched(&a, &b, &mut reference, batch, m, k, n);
            let pa = PackedAI8::pack(&a, batch, m, k);
            let pb = PackedBI8::pack(&b, batch, k, n);
            let mut got = vec![0i32; batch * m * n];
            gemm_i8_prepacked(&pa, &pb, &mut got);
            assert_eq!(got, reference, "{batch}x{m}x{k}x{n}");
        }
    }

    #[test]
    fn prepacked_threaded_split_matches_serial() {
        let (batch, m, k, n) = (8usize, 32, 64, 40);
        assert!(batch * m * k * n >= PARALLEL_THRESHOLD);
        let mut rng = SeededRng::new(37);
        let a = rand_i8(&mut rng, batch * m * k);
        let b = rand_i8(&mut rng, batch * k * n);
        let pa = PackedAI8::pack(&a, batch, m, k);
        let pb = PackedBI8::pack(&b, batch, k, n);
        let mut par = vec![0i32; batch * m * n];
        gemm_i8_prepacked(&pa, &pb, &mut par);
        let mut ser = vec![0i32; batch * m * n];
        with_gemm_thread_cap(1, || gemm_i8_prepacked(&pa, &pb, &mut ser));
        assert_eq!(par, ser);
        let mut reference = vec![0i32; batch * m * n];
        gemm_i8_batched(&a, &b, &mut reference, batch, m, k, n);
        assert_eq!(par, reference);
    }

    #[test]
    fn packed_b_slot_writes_match_wholesale_pack() {
        let mut rng = SeededRng::new(41);
        let (batch, k, n) = (3usize, 5, 11);
        let b = rand_i8(&mut rng, batch * k * n);
        let wholesale = PackedBI8::pack(&b, batch, k, n);
        let mut incremental = PackedBI8::zeroed(batch, k, n);
        for s in 0..batch {
            for p in 0..k {
                for j in 0..n {
                    *incremental.slot(s, p, j) = b[(s * k + p) * n + j] as i16;
                }
            }
        }
        assert_eq!(incremental.data, wholesale.data);
        assert_eq!(incremental.unpack(), b);
    }

    #[test]
    fn packed_b_write_taps_matches_slot_writes() {
        let mut rng = SeededRng::new(43);
        let (batch, k, n) = (9usize, 6, 13);
        let b = rand_i8(&mut rng, batch * k * n);
        let mut by_slot = PackedBI8::zeroed(batch, k, n);
        let mut by_taps = PackedBI8::zeroed(batch, k, n);
        let mut col = vec![0i16; batch];
        for p in 0..k {
            for j in 0..n {
                for (s, cell) in col.iter_mut().enumerate() {
                    let v = b[(s * k + p) * n + j] as i16;
                    *by_slot.slot(s, p, j) = v;
                    *cell = v;
                }
                by_taps.write_taps(p, j, &col);
            }
        }
        assert_eq!(by_taps.data, by_slot.data);
        assert_eq!(by_taps.unpack(), b);
    }
}
