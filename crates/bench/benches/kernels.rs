//! Benches of the real Rust kernels — a host-CPU-measured analog of the
//! paper's Figure 7/8 study: where does our own Winograd implementation
//! beat our own im2row?
//!
//! Run with `cargo bench -p wa-bench`. The harness is a dependency-free
//! `std::time` timer (`harness = false`): each case is warmed up, then
//! timed over enough iterations to smooth scheduler noise. The absolute
//! numbers describe the host CPU, not a Cortex-A73, but the qualitative
//! crossovers (Winograd wins as channels grow and loses on the stem)
//! mirror the paper.

use std::time::Instant;

use wa_tensor::{gemm, im2row, pad_nchw, SeededRng, Tensor, Transpose};
use wa_winograd::{transform_weights, winograd_conv2d_pretransformed, WinogradTransform};

/// Times `f` with warm-up, returning mean nanoseconds per iteration.
fn time_ns(mut f: impl FnMut()) -> f64 {
    // warm-up
    for _ in 0..2 {
        f();
    }
    // calibrate iteration count toward ~100ms of work
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-7);
    let iters = ((0.1 / once) as usize).clamp(3, 1000);
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e9 / iters as f64
}

fn report(group: &str, name: &str, ns: f64) {
    if ns > 1e6 {
        println!("{group:<12} {name:<28} {:>10.3} ms", ns / 1e6);
    } else {
        println!("{group:<12} {name:<28} {:>10.3} µs", ns / 1e3);
    }
}

fn conv_im2row(x: &Tensor, wmat: &Tensor, kh: usize, pad: usize) -> Tensor {
    let xp = pad_nchw(x, pad);
    let rows = im2row(&xp, kh, kh, 1);
    gemm(&rows, Transpose::No, wmat, Transpose::Yes)
}

/// Figure 7/8 analog: one conv layer per algorithm at three ResNet-18
/// shapes.
fn bench_conv_algorithms() {
    let shapes: [(usize, usize, usize, &str); 3] = [
        (3, 32, 32, "stem 3->32 @32"),
        (64, 64, 16, "mid 64->64 @16"),
        (128, 128, 8, "deep 128->128 @8"),
    ];
    let mut rng = SeededRng::new(0);
    for (cin, cout, hw, label) in shapes {
        let x = rng.uniform_tensor(&[1, cin, hw, hw], -1.0, 1.0);
        let w = rng.uniform_tensor(&[cout, cin, 3, 3], -1.0, 1.0);
        let wmat = w.reshape(&[cout, cin * 9]);
        report(
            "conv",
            &format!("im2row {label}"),
            time_ns(|| {
                let _ = conv_im2row(&x, &wmat, 3, 1);
            }),
        );
        for m in [2usize, 4, 6] {
            let t = WinogradTransform::canonical(m, 3);
            let u = transform_weights(&w, &t);
            report(
                "conv",
                &format!("F{m} {label}"),
                time_ns(|| {
                    let _ = winograd_conv2d_pretransformed(&x, &u, cout, cin, None, &t, 1);
                }),
            );
        }
    }
}

/// GEMM throughput at the sizes the conv lowering produces.
fn bench_gemm() {
    let mut rng = SeededRng::new(1);
    for (m, k, n) in [(256, 288, 64), (1024, 576, 128), (64, 1152, 192)] {
        let a = rng.uniform_tensor(&[m, k], -1.0, 1.0);
        let b = rng.uniform_tensor(&[k, n], -1.0, 1.0);
        report(
            "gemm",
            &format!("{m}x{k}x{n}"),
            time_ns(|| {
                let _ = gemm(&a, Transpose::No, &b, Transpose::No);
            }),
        );
    }
}

/// Cook-Toom synthesis cost (exact rational arithmetic).
fn bench_cook_toom() {
    for (m, r) in [(2usize, 3usize), (4, 3), (6, 3), (6, 5)] {
        report(
            "cook_toom",
            &format!("F({m},{r})"),
            time_ns(|| {
                let _ = wa_winograd::cook_toom(m, r);
            }),
        );
    }
}

/// Winograd numerical-error probe (Table 1 root cause) — cheap enough to
/// track as a bench so regressions in transform quality are visible.
fn bench_tile_error() {
    let t = WinogradTransform::canonical(4, 3);
    report(
        "tile_error",
        "F4_int8_100tiles",
        time_ns(|| {
            let _ = wa_winograd::tile_error_quantized(&t, wa_quant::BitWidth::INT8, 100, 7);
        }),
    );
}

fn main() {
    // `cargo bench` passes filter/`--bench` style args; this harness runs
    // every group regardless, which is fine at its size.
    println!("{:<12} {:<28} {:>13}", "group", "case", "time/iter");
    bench_conv_algorithms();
    bench_gemm();
    bench_cook_toom();
    bench_tile_error();
}
