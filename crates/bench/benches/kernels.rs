//! Criterion benches of the real Rust kernels — a host-CPU-measured
//! analog of the paper's Figure 7/8 study: where does our own Winograd
//! implementation beat our own im2row?
//!
//! Run with `cargo bench -p wa-bench`. The absolute numbers describe the
//! host CPU, not a Cortex-A73, but the qualitative crossovers (Winograd
//! wins as channels grow and loses on the stem) mirror the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wa_tensor::{gemm, im2row, pad_nchw, SeededRng, Tensor, Transpose};
use wa_winograd::{transform_weights, winograd_conv2d_pretransformed, WinogradTransform};

fn conv_im2row(x: &Tensor, wmat: &Tensor, kh: usize, pad: usize) -> Tensor {
    let xp = pad_nchw(x, pad);
    let rows = im2row(&xp, kh, kh, 1);
    gemm(&rows, Transpose::No, wmat, Transpose::Yes)
}

/// Figure 7/8 analog: one conv layer per algorithm at three ResNet-18
/// shapes.
fn bench_conv_algorithms(c: &mut Criterion) {
    let shapes: [(usize, usize, usize, &str); 3] = [
        (3, 32, 32, "stem 3->32 @32"),
        (64, 64, 16, "mid 64->64 @16"),
        (128, 128, 8, "deep 128->128 @8"),
    ];
    let mut rng = SeededRng::new(0);
    let mut group = c.benchmark_group("conv");
    group.sample_size(10);
    for (cin, cout, hw, label) in shapes {
        let x = rng.uniform_tensor(&[1, cin, hw, hw], -1.0, 1.0);
        let w = rng.uniform_tensor(&[cout, cin, 3, 3], -1.0, 1.0);
        let wmat = w.reshape(&[cout, cin * 9]);
        group.bench_with_input(BenchmarkId::new("im2row", label), &x, |b, x| {
            b.iter(|| conv_im2row(x, &wmat, 3, 1))
        });
        for m in [2usize, 4, 6] {
            let t = WinogradTransform::canonical(m, 3);
            let u = transform_weights(&w, &t);
            group.bench_with_input(BenchmarkId::new(format!("F{m}"), label), &x, |b, x| {
                b.iter(|| winograd_conv2d_pretransformed(x, &u, cout, cin, None, &t, 1))
            });
        }
    }
    group.finish();
}

/// GEMM throughput at the sizes the conv lowering produces.
fn bench_gemm(c: &mut Criterion) {
    let mut rng = SeededRng::new(1);
    let mut group = c.benchmark_group("gemm");
    group.sample_size(10);
    for (m, k, n) in [(256, 288, 64), (1024, 576, 128), (64, 1152, 192)] {
        let a = rng.uniform_tensor(&[m, k], -1.0, 1.0);
        let b = rng.uniform_tensor(&[k, n], -1.0, 1.0);
        group.bench_function(format!("{}x{}x{}", m, k, n), |bch| {
            bch.iter(|| gemm(&a, Transpose::No, &b, Transpose::No))
        });
    }
    group.finish();
}

/// Cook-Toom synthesis cost (exact rational arithmetic).
fn bench_cook_toom(c: &mut Criterion) {
    let mut group = c.benchmark_group("cook_toom");
    group.sample_size(10);
    for (m, r) in [(2usize, 3usize), (4, 3), (6, 3), (6, 5)] {
        group.bench_function(format!("F({m},{r})"), |b| {
            b.iter(|| wa_winograd::cook_toom(m, r))
        });
    }
    group.finish();
}

/// Winograd numerical-error probe (Table 1 root cause) — cheap enough to
/// track as a bench so regressions in transform quality are visible.
fn bench_tile_error(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_error");
    group.sample_size(10);
    let t = WinogradTransform::canonical(4, 3);
    group.bench_function("F4_int8_100tiles", |b| {
        b.iter(|| wa_winograd::tile_error_quantized(&t, wa_quant::BitWidth::INT8, 100, 7))
    });
    group.finish();
}

criterion_group!(benches, bench_conv_algorithms, bench_gemm, bench_cook_toom, bench_tile_error);
criterion_main!(benches);
