//! **Table 5**: ResNeXt-20 (8×16) — static vs learned transforms at FP32
//! and INT8 (the grouped-convolution architecture).
//!
//! Expected shape (paper): INT8 static F4 collapses (76.7% vs 93.4%
//! baseline) while flex F4 fully recovers (93.3%) — fewer 3×3 layers than
//! ResNet-18 make the flex recovery even cleaner.

use wa_bench::{pct, prepare, recipe, save_json, Scale};
use wa_core::{fit, ConvAlgo};
use wa_models::{ModelSpec, ResNeXt20};
use wa_nn::QuantConfig;
use wa_quant::BitWidth;
use wa_tensor::{Json, SeededRng};

struct Row {
    config: String,
    bits: String,
    cifar10_like: f64,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("config", Json::from(self.config.clone())),
            ("bits", Json::from(self.bits.clone())),
            ("cifar10_like", Json::from(self.cifar10_like)),
        ])
    }
}

fn train(algo: Option<ConvAlgo>, bits: BitWidth, scale: Scale, seed: u64) -> f64 {
    let ds = wa_data::cifar10_like(scale.per_class, scale.img, 13);
    let (train_b, val_b) = prepare(&ds, scale.batch, seed);
    let mut rng = SeededRng::new(seed);
    let mut spec = ModelSpec::builder()
        .classes(10)
        .width(0.125)
        .quant(QuantConfig::uniform(bits));
    if let Some(a) = algo {
        spec = spec.algo(a);
    }
    let mut net =
        ResNeXt20::from_spec(&spec.build().expect("valid spec"), &mut rng).expect("valid spec");
    fit(
        &mut net,
        &train_b,
        &val_b,
        &recipe(scale.epochs + scale.epochs / 2),
    )
    .best_val_acc()
}

fn main() {
    let scale = Scale::from_env();
    let configs: Vec<(&str, Option<ConvAlgo>, BitWidth)> = vec![
        ("im2row", None, BitWidth::FP32),
        (
            "WAF2 flex",
            Some(ConvAlgo::WinogradFlex { m: 2 }),
            BitWidth::FP32,
        ),
        ("im2row", None, BitWidth::INT8),
        (
            "WAF2 static",
            Some(ConvAlgo::Winograd { m: 2 }),
            BitWidth::INT8,
        ),
        (
            "WAF2 flex",
            Some(ConvAlgo::WinogradFlex { m: 2 }),
            BitWidth::INT8,
        ),
        (
            "WAF4 static",
            Some(ConvAlgo::Winograd { m: 4 }),
            BitWidth::INT8,
        ),
        (
            "WAF4 flex",
            Some(ConvAlgo::WinogradFlex { m: 4 }),
            BitWidth::INT8,
        ),
    ];
    println!("ResNeXt-20 (8×16): 6 grouped 3×3 stages, cardinality 8");
    println!("{:<14} {:>6} {:>14}", "Conv", "bits", "cifar10-like");
    let mut rows = Vec::new();
    let mut int8 = std::collections::HashMap::new();
    for (i, (name, algo, bits)) in configs.iter().enumerate() {
        let acc = train(*algo, *bits, scale, 80 + i as u64);
        println!("{:<14} {:>6} {:>14}", name, bits.to_string(), pct(acc));
        if *bits == BitWidth::INT8 {
            int8.insert(name.to_string(), acc);
        }
        rows.push(Row {
            config: name.to_string(),
            bits: bits.to_string(),
            cifar10_like: acc,
        });
    }
    let s4 = int8["WAF4 static"];
    let f4 = int8["WAF4 flex"];
    println!("\nINT8 F4: static {} vs flex {}", pct(s4), pct(f4));
    assert!(f4 >= s4 - 0.02, "flex must not trail static at INT8 F4");
    save_json("table5", &Json::arr(rows.iter().map(Row::to_json)));
}
