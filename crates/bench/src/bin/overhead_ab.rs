//! Paired A/B of stage-span instrumentation overhead: alternate
//! spans-on and spans-off runs of the same executor on the same batch,
//! then compare medians. Interleaving cancels machine drift that makes
//! back-to-back full benchmark runs incomparable.

use std::time::Instant;

use wa_core::ConvAlgo;
use wa_models::{BatchExecutor, ExecutorConfig, ModelSpec, ResNet18};
use wa_tensor::SeededRng;

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

fn main() {
    let mut rng = SeededRng::new(11);
    let spec = ModelSpec::builder()
        .classes(10)
        .width(0.125)
        .algo(ConvAlgo::Winograd { m: 2 })
        .build()
        .expect("static spec");
    let model = ResNet18::from_spec(&spec, &mut rng).expect("static spec");
    let x = rng.uniform_tensor(&[24, 3, 16, 16], -1.0, 1.0);
    let exec = BatchExecutor::new(ExecutorConfig {
        threads: 1,
        chunk: 2,
    })
    .expect("static config is valid");

    // warm up caches and the metrics registry
    for _ in 0..3 {
        let _ = exec.run(&model, &x).expect("warm-up failed");
    }

    let reps = 15;
    let (mut on, mut off) = (Vec::new(), Vec::new());
    for _ in 0..reps {
        for &spans in &[true, false] {
            wa_obs::set_spans_enabled(spans);
            let t0 = Instant::now();
            let _ = exec.run(&model, &x).expect("run failed");
            let dt = t0.elapsed().as_secs_f64();
            if spans { &mut on } else { &mut off }.push(dt);
        }
    }
    wa_obs::set_spans_enabled(true);
    let (m_on, m_off) = (median(on), median(off));
    println!(
        "ResNet-18 F2 t1: median spans-on {:.3}ms, spans-off {:.3}ms, overhead {:+.2}%",
        m_on * 1e3,
        m_off * 1e3,
        (m_on / m_off - 1.0) * 100.0
    );
}
