//! **Table 2**: hardware specifications of the modeled cores, plus the
//! calibrated machine parameters the latency model adds on top.

use wa_latency::Core;

fn main() {
    println!("{:<6} {:>8} {:>8} {:>8}", "CPU", "Clock", "L1", "L2");
    for core in [Core::CortexA73, Core::CortexA53] {
        let s = core.spec();
        println!(
            "{:<6} {:>5.1} GHz {:>5} KB {:>5} KB",
            s.name.trim_start_matches("Cortex-"),
            s.clock_ghz,
            s.l1_kb,
            s.l2_kb
        );
    }
    println!("\nCalibrated model parameters (see DESIGN.md for the substitution):");
    println!(
        "{:<6} {:>10} {:>10} {:>8} {:>10} {:>9} {:>9}",
        "CPU", "MAC/c f32", "MAC/c i8", "B/cycle", "gemm ovh", "tf eff", "tile ovh"
    );
    for core in [Core::CortexA73, Core::CortexA53] {
        let s = core.spec();
        println!(
            "{:<6} {:>10.1} {:>10.1} {:>8.1} {:>10.0} {:>9.2} {:>9.0}",
            s.name.trim_start_matches("Cortex-"),
            s.peak_macs_fp32,
            s.peak_macs_int8,
            s.bytes_per_cycle,
            s.gemm_call_overhead,
            s.transform_eff,
            s.tile_overhead
        );
    }
}
