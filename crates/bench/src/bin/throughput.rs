//! **Throughput**: batched-inference samples/sec vs worker thread count
//! for every model of the zoo, under direct (im2row) and Winograd F2
//! convolutions, plus a ResNet-18 F4 configuration.
//!
//! This is the serving-side companion of the latency tables: instead of
//! modeling one core's single-image latency, it measures what the
//! [`wa_models::BatchExecutor`] actually sustains on this machine when a
//! batch is sharded across `std::thread::scope` workers. Results are
//! appended to `results/throughput.json` as a [`wa_bench::BenchRecord`].
//!
//! The run doubles as a smoke test: every configuration must clear
//! 1 sample/sec, and the batched output must match the sequential
//! per-sample loop exactly. With `WA_ASSERT_SCALING=1` (set by CI) the
//! run additionally asserts that thread scaling is not *inverted* on the
//! ResNet-18 im2row and F4 rows — 2 workers must sustain at least 95% of
//! 1 worker — pinning the kernel-layer regression class where adding
//! threads used to *lose* throughput. (The executor clamps its worker
//! count to the machine's cores, so on a single-core host every thread
//! row runs one worker and the samples/sec columns collapse to noise.)
//!
//! `WA_SPANS=0` turns the `wa_obs` stage spans off for the run — compare
//! against a default run to measure the instrumentation overhead itself.

use std::time::Instant;

use wa_bench::{BenchRecord, Scale};
use wa_core::ConvAlgo;
use wa_models::{ExecutorConfig, Infer, LeNet, ModelSpec, ResNeXt20, ResNet18, SqueezeNet};
use wa_nn::{Layer, QuantConfig, Tape};
use wa_quant::{BitWidth, Execution, TapPolicy};
use wa_tensor::{SeededRng, Tensor};

/// Times one executor run and returns samples/sec.
fn throughput(run: impl Fn() -> Tensor, samples: usize) -> f64 {
    // one warm-up, then the timed run
    let _ = run();
    let t0 = Instant::now();
    let out = run();
    let dt = t0.elapsed().as_secs_f64().max(1e-9);
    assert!(!out.is_empty(), "executor produced an empty output");
    samples as f64 / dt
}

/// Benches one model at each worker count, returning `(threads,
/// samples/sec)` pairs for scaling assertions.
fn bench_model<M: Infer + Sync>(
    record: &mut BenchRecord,
    name: &str,
    model: &M,
    batch: &Tensor,
    threads: &[usize],
) -> Vec<(usize, f64)> {
    let n = batch.dim(0);
    // sequential per-sample reference: the executor must reproduce it
    let seq: Vec<Tensor> = (0..n)
        .map(|i| {
            model
                .infer_tensor(&batch.slice_dim0(i, i + 1))
                .expect("sequential inference failed")
        })
        .collect();
    let seq_refs: Vec<&Tensor> = seq.iter().collect();
    let want = Tensor::concat_dim0(&seq_refs);

    let mut pairs = Vec::with_capacity(threads.len());
    let mut base = 0.0;
    for &t in threads {
        let cfg = ExecutorConfig {
            threads: t,
            chunk: 2,
        };
        let exec = wa_models::BatchExecutor::new(cfg).expect("static config is valid");
        let got = exec.run(model, batch).expect("batched inference failed");
        assert_eq!(
            got.data(),
            want.data(),
            "{name}: batched output diverged from the sequential loop"
        );
        let sps = throughput(
            || exec.run(model, batch).expect("batched inference failed"),
            n,
        );
        assert!(
            sps > 1.0,
            "{name} with {t} threads must clear 1 sample/sec, got {sps:.3}"
        );
        if t == threads[0] {
            base = sps;
        }
        println!(
            "{name:<22} threads {t}  {sps:>10.1} samples/sec  (x{:.2} vs {} thread)",
            sps / base,
            threads[0]
        );
        record.push(name, sps, &[("threads", t as f64), ("batch", n as f64)]);
        pairs.push((t, sps));
    }
    pairs
}

/// With `WA_ASSERT_SCALING` set, fails the run if 2 workers sustain less
/// than 95% of 1 worker's samples/sec — the inverted-scaling regression
/// where thread churn in the kernel layer made extra workers a net loss.
/// The 5% slack absorbs timer noise; genuine inversion was a 10%+ drop.
fn assert_scaling(name: &str, pairs: &[(usize, f64)]) {
    if std::env::var_os("WA_ASSERT_SCALING").is_none() {
        return;
    }
    let sps_at = |t: usize| {
        pairs
            .iter()
            .find(|&&(threads, _)| threads == t)
            .map(|&(_, sps)| sps)
            .unwrap_or_else(|| panic!("{name}: no {t}-thread sample"))
    };
    let (one, two) = (sps_at(1), sps_at(2));
    assert!(
        two >= 0.95 * one,
        "{name}: thread scaling is inverted — 2 workers sustained \
         {two:.1} samples/sec vs {one:.1} at 1 worker"
    );
    println!("{name:<22} scaling ok: 2 threads at x{:.2}", two / one);
}

/// Measures what the per-model `G·g·Gᵀ` filter-transform cache buys: the
/// same batched run with the memoized transform reused across runs
/// ("warm") vs invalidated through the `&mut Layer` API before every run
/// ("cold", the pre-cache behaviour re-derived per run *and* per chunk).
///
/// The configuration is chosen to expose the constant per-chunk work the
/// cache removes: a full-width ResNet-18 (16 Winograd convs with up to
/// 256·256 filters each) on small 8×8 images, sharded one sample per
/// chunk — per chunk, the filter transform rivals the input transform.
fn bench_filter_cache(record: &mut BenchRecord, rng: &mut SeededRng) {
    let batch_n = 8usize;
    let spec = ModelSpec::builder()
        .classes(10)
        .width(1.0)
        .algo(ConvAlgo::Winograd { m: 2 })
        .build()
        .expect("static spec");
    let mut model = ResNet18::from_spec(&spec, rng).expect("static spec");
    let x = rng.uniform_tensor(&[batch_n, 3, 8, 8], -1.0, 1.0);
    let exec = wa_models::BatchExecutor::new(ExecutorConfig {
        threads: 2,
        chunk: 1,
    })
    .expect("static config is valid");

    let reference = exec.run(&model, &x).expect("batched inference failed");
    let runs = 3usize;
    let mut timed = |invalidate: bool| -> f64 {
        let _ = exec.run(&model, &x); // warm-up (and cache fill)
        let t0 = Instant::now();
        for _ in 0..runs {
            if invalidate {
                // a no-op visit drops the memoized filter transform
                model.visit_params(&mut |_| {});
            }
            let out = exec.run(&model, &x).expect("batched inference failed");
            assert_eq!(
                out.data(),
                reference.data(),
                "filter cache changed the output"
            );
        }
        (runs * batch_n) as f64 / t0.elapsed().as_secs_f64().max(1e-9)
    };
    let cold = timed(true);
    let warm = timed(false);
    println!(
        "{:<22} warm {warm:>10.1} samples/sec  vs cold {cold:>10.1}  (x{:.2})",
        "ResNet-18 F2 w1.0 cache",
        warm / cold
    );
    record.push(
        "ResNet-18 F2 filter-cache warm",
        warm,
        &[("batch", batch_n as f64)],
    );
    record.push(
        "ResNet-18 F2 filter-cache cold",
        cold,
        &[("batch", batch_n as f64)],
    );
}

/// The zero-copy parameter-sharing measurement: the chunk-1 full-width
/// ResNet-18 config is the executor's worst case for per-chunk constant
/// work — every sample gets its own tape, so before copy-on-write
/// storage each of the 8 chunks deep-cloned all ~11M parameter floats.
/// With COW `Tensor`s every worker tape *aliases* one set of parameter
/// buffers; the run must therefore finish with **zero** COW-detach
/// bytes, which [`wa_models::ExecutorStats::params_cloned_bytes`] pins
/// and this record appends to `results/throughput.json`.
fn bench_zero_copy(record: &mut BenchRecord, rng: &mut SeededRng) {
    let batch_n = 8usize;
    let spec = ModelSpec::builder()
        .classes(10)
        .width(1.0)
        .algo(ConvAlgo::Winograd { m: 2 })
        .build()
        .expect("static spec");
    let model = ResNet18::from_spec(&spec, rng).expect("static spec");
    let x = rng.uniform_tensor(&[batch_n, 3, 8, 8], -1.0, 1.0);
    let exec = wa_models::BatchExecutor::new(ExecutorConfig {
        threads: 2,
        chunk: 1,
    })
    .expect("static config is valid");

    let _ = exec.run(&model, &x).expect("warm-up run failed"); // fills the filter cache
    let runs = 3usize;
    let mut cloned = 0u64;
    let t0 = Instant::now();
    for _ in 0..runs {
        let (_, stats) = exec
            .run_with_stats(&model, &x)
            .expect("batched inference failed");
        cloned += stats.params_cloned_bytes;
    }
    let sps = (runs * batch_n) as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    assert_eq!(
        cloned, 0,
        "the chunk-1 inference path must share parameter buffers, not clone them"
    );
    println!(
        "{:<22} chunk 1  {sps:>10.1} samples/sec  params_cloned_bytes {cloned}",
        "ResNet-18 F2 w1.0"
    );
    record.push(
        "ResNet-18 F2 w1.0 chunk-1 zero-copy",
        sps,
        &[
            ("batch", batch_n as f64),
            ("chunk", 1.0),
            ("params_cloned_bytes", cloned as f64),
        ],
    );
}

/// True-integer serving rows: full-width ResNet-18 on the
/// [`Execution::Int8`] path — quantize → `i8×i8→i32` GEMM → fixed-point
/// requantize — under im2row and F4, against a matching-geometry f32
/// im2row row. Full width is the honest regime for this claim: the
/// integer inner products dominate the wall clock, whereas at width
/// 0.125 the per-element quantize/requantize passes swamp the tiny
/// GEMMs. Observers are warmed first (integer serving requantizes
/// through settled scales, and cold observers would break the
/// batched == sequential assertion inside [`bench_model`]).
///
/// With `WA_ASSERT_SCALING` set the run pins the point of the int path:
/// int8 im2row must sustain ≥ 1.5× the f32 im2row row's best
/// samples/sec, and int8 F4 must beat int8 im2row (the Winograd
/// algorithmic saving must survive integer execution).
fn bench_int8(record: &mut BenchRecord, rng: &mut SeededRng, threads: &[usize]) {
    let int8 = QuantConfig::uniform(BitWidth::INT8)
        .with_transform(TapPolicy::PerTap)
        .with_execution(Execution::Int8);
    // full-width ResNet-18 runs ~50x slower per sample than the smoke
    // width above, so keep the batch small. CIFAR-native 32×32 input:
    // at 16×16 the deepest stage runs at 2×2 spatial, where every F4
    // tile computes a 4×4 block and crops it to 2×2 — charging the
    // Winograd rows 4× waste on exactly the channel-heaviest layers.
    let batch_n = 4;
    let x = rng.uniform_tensor(&[batch_n, 3, 32, 32], -1.0, 1.0);
    let best = |pairs: &[(usize, f64)]| {
        pairs
            .iter()
            .map(|&(_, sps)| sps)
            .fold(f64::NEG_INFINITY, f64::max)
    };
    let mut bench = |name: &str, algo: ConvAlgo, quant: QuantConfig| -> f64 {
        let spec = ModelSpec::builder()
            .classes(10)
            .algo(algo)
            .quant(quant)
            .build()
            .expect("static spec");
        let mut model = ResNet18::from_spec(&spec, rng).expect("static spec");
        {
            // calibrate: one training batch settles every observer
            let warm = rng.uniform_tensor(&[2, 3, 32, 32], -1.0, 1.0);
            let mut tape = Tape::new();
            let v = tape.leaf(warm);
            let _ = model.forward(&mut tape, v, true);
        }
        best(&bench_model(record, name, &model, &x, threads))
    };
    let f32_best = bench("ResNet-18 w1.0 im2row", ConvAlgo::Im2row, QuantConfig::FP32);
    let im2row = bench("ResNet-18 int8 im2row", ConvAlgo::Im2row, int8);
    let f4 = bench("ResNet-18 int8 F4", ConvAlgo::Winograd { m: 4 }, int8);
    println!(
        "{:<22} int8 im2row x{:.2} vs f32, int8 F4 x{:.2} vs int8 im2row",
        "ResNet-18 int8",
        im2row / f32_best,
        f4 / im2row
    );
    if std::env::var_os("WA_ASSERT_SCALING").is_some() {
        assert!(
            im2row >= 1.5 * f32_best,
            "int8 im2row must sustain at least 1.5x the f32 im2row row: \
             {im2row:.1} vs {f32_best:.1} samples/sec"
        );
        assert!(
            f4 > im2row,
            "int8 F4 must beat int8 im2row: {f4:.1} vs {im2row:.1} samples/sec"
        );
    }
}

fn main() {
    if std::env::var_os("WA_SPANS").is_some_and(|v| v == "0") {
        wa_obs::set_spans_enabled(false);
        println!("stage spans disabled (WA_SPANS=0)");
    }
    let scale = Scale::from_env();
    let mut rng = SeededRng::new(11);
    let threads = [1usize, 2, 4];
    let batch_n = if scale.per_class > 100 { 64 } else { 24 };
    let mut record = BenchRecord::new("throughput", "samples/sec");

    for algo in [ConvAlgo::Im2row, ConvAlgo::Winograd { m: 2 }] {
        let lenet_spec = ModelSpec::builder()
            .classes(10)
            .input_size(28)
            .algo(algo)
            .build()
            .expect("static spec");
        let lenet = LeNet::from_spec(&lenet_spec, &mut rng).expect("static spec");
        let lx = rng.uniform_tensor(&[batch_n, 1, 28, 28], -1.0, 1.0);
        bench_model(&mut record, &format!("LeNet {algo}"), &lenet, &lx, &threads);

        let cifar_spec = ModelSpec::builder()
            .classes(10)
            .width(0.125)
            .algo(algo)
            .build()
            .expect("static spec");
        let cx = rng.uniform_tensor(&[batch_n, 3, 16, 16], -1.0, 1.0);

        let resnet = ResNet18::from_spec(&cifar_spec, &mut rng).expect("static spec");
        let resnet_name = format!("ResNet-18 {algo}");
        let pairs = bench_model(&mut record, &resnet_name, &resnet, &cx, &threads);
        if matches!(algo, ConvAlgo::Im2row) {
            assert_scaling(&resnet_name, &pairs);
        }

        let squeeze = SqueezeNet::from_spec(&cifar_spec, &mut rng).expect("static spec");
        bench_model(
            &mut record,
            &format!("SqueezeNet {algo}"),
            &squeeze,
            &cx,
            &threads,
        );

        let resnext = ResNeXt20::from_spec(&cifar_spec, &mut rng).expect("static spec");
        bench_model(
            &mut record,
            &format!("ResNeXt-20 {algo}"),
            &resnext,
            &cx,
            &threads,
        );
    }

    // F4 quadruples the run-time weight footprint, so only the ResNet-18
    // configuration (the CI scaling sentinel) runs it.
    let f4_spec = ModelSpec::builder()
        .classes(10)
        .width(0.125)
        .algo(ConvAlgo::Winograd { m: 4 })
        .build()
        .expect("static spec");
    let resnet_f4 = ResNet18::from_spec(&f4_spec, &mut rng).expect("static spec");
    let fx = rng.uniform_tensor(&[batch_n, 3, 16, 16], -1.0, 1.0);
    let pairs = bench_model(&mut record, "ResNet-18 F4", &resnet_f4, &fx, &threads);
    assert_scaling("ResNet-18 F4", &pairs);

    bench_int8(&mut record, &mut rng, &threads);

    bench_filter_cache(&mut record, &mut rng);
    bench_zero_copy(&mut record, &mut rng);

    record.save();
}
