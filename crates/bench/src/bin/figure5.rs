//! **Figure 5**: INT8 LeNet (5×5 filters) per-epoch validation accuracy
//! for im2row and Winograd-aware F2 (± flex), plus larger tiles.
//!
//! Expected shape (paper): flex strictly above static throughout
//! training; larger tiles (F4 uses 8×8 tiles, F6 10×10) degrade further
//! — static F(6×6, 5×5) loses ~47%.

use wa_bench::{pct, prepare, recipe, save_json, Scale};
use wa_core::{fit, ConvAlgo};
use wa_models::{LeNet, ModelSpec};
use wa_nn::QuantConfig;
use wa_quant::BitWidth;
use wa_tensor::{Json, SeededRng};

struct Curve {
    config: String,
    val_acc_per_epoch: Vec<f64>,
}

impl Curve {
    fn to_json(&self) -> Json {
        Json::obj([
            ("config", Json::from(self.config.clone())),
            (
                "val_acc_per_epoch",
                Json::arr(self.val_acc_per_epoch.iter().copied()),
            ),
        ])
    }
}

fn main() {
    let scale = Scale::from_env();
    let img = 12; // LeNet geometry needs size ≡ 0 (mod 4); 12 or 28
    let ds = wa_data::mnist_like(scale.per_class, img, 3);
    let (train_b, val_b) = prepare(&ds, scale.batch, 2);
    let epochs = (2 * scale.epochs).max(16);

    let configs: Vec<(&str, Option<ConvAlgo>)> = vec![
        ("im2row", None),
        ("F2", Some(ConvAlgo::Winograd { m: 2 })),
        ("F2-flex", Some(ConvAlgo::WinogradFlex { m: 2 })),
        ("F4", Some(ConvAlgo::Winograd { m: 4 })),
        ("F4-flex", Some(ConvAlgo::WinogradFlex { m: 4 })),
    ];
    println!(
        "INT8 LeNet (5×5 filters) on {} — validation accuracy per epoch\n",
        ds.name
    );
    let mut curves = Vec::new();
    for (i, (name, algo)) in configs.iter().enumerate() {
        let mut rng = SeededRng::new(20 + i as u64);
        let mut spec = ModelSpec::builder()
            .classes(10)
            .input_size(img)
            .quant(QuantConfig::uniform(BitWidth::INT8));
        if let Some(a) = algo {
            spec = spec.algo(*a);
        }
        let mut net =
            LeNet::from_spec(&spec.build().expect("valid spec"), &mut rng).expect("valid spec");
        let hist = fit(&mut net, &train_b, &val_b, &recipe(epochs));
        let accs: Vec<f64> = hist.epochs.iter().map(|e| e.val_acc).collect();
        println!(
            "{:<8} final {} best {}  curve: {}",
            name,
            pct(*accs.last().unwrap()),
            pct(hist.best_val_acc()),
            accs.iter()
                .map(|a| format!("{:.0}", 100.0 * a))
                .collect::<Vec<_>>()
                .join(" ")
        );
        curves.push(Curve {
            config: name.to_string(),
            val_acc_per_epoch: accs,
        });
    }
    let best = |name: &str| {
        curves
            .iter()
            .find(|c| c.config == name)
            .unwrap()
            .val_acc_per_epoch
            .iter()
            .cloned()
            .fold(0.0, f64::max)
    };
    println!(
        "\nflex − static gaps: F2 {:+.1}%  F4 {:+.1}%",
        100.0 * (best("F2-flex") - best("F2")),
        100.0 * (best("F4-flex") - best("F4"))
    );
    assert!(
        best("F2-flex") >= best("F2") - 0.02,
        "flex must not trail static at F2"
    );
    save_json("figure5", &Json::arr(curves.iter().map(Curve::to_json)));
}
