//! **Table 1**: replacing the convolutional layers of a *trained*
//! ResNet-18 with Winograd F2/F4/F6 at 32/16/8-bit, with observer warm-up
//! but no retraining.
//!
//! Expected shape (paper): full precision survives for every tile size;
//! under quantization F2 survives but F4/F6 collapse toward chance.

use wa_bench::{pct, prepare, recipe, save_json, Scale};
use wa_core::{fit, ConvAlgo};
use wa_models::{swap_and_evaluate, ModelSpec, ResNet18};
use wa_quant::BitWidth;
use wa_tensor::{Json, SeededRng};

struct Row {
    method: String,
    fp32: f64,
    int16: f64,
    int8: f64,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("method", Json::from(self.method.clone())),
            ("fp32", Json::from(self.fp32)),
            ("int16", Json::from(self.int16)),
            ("int8", Json::from(self.int8)),
        ])
    }
}

fn main() {
    let scale = Scale::from_env();
    let ds = wa_data::cifar10_like(scale.per_class, scale.img, 7);
    let (train_b, val_b) = prepare(&ds, scale.batch, 1);

    // train the baseline with direct convolutions, FP32
    let mut rng = SeededRng::new(3);
    let spec = ModelSpec::builder()
        .classes(10)
        .width(scale.width)
        .build()
        .expect("valid spec");
    let mut net = ResNet18::from_spec(&spec, &mut rng).expect("valid spec");
    let hist = fit(&mut net, &train_b, &val_b, &recipe(scale.epochs));
    println!(
        "ResNet-18 (width {}) on {}: baseline FP32 accuracy {}\n",
        scale.width,
        ds.name,
        pct(hist.final_val_acc())
    );

    let bits = [BitWidth::FP32, BitWidth::INT16, BitWidth::INT8];
    println!(
        "{:<16} {:>8} {:>8} {:>8}",
        "Conv method", "32-bit", "16-bit", "8-bit"
    );
    let mut rows = Vec::new();
    let mut run = |label: String, algo: ConvAlgo| {
        let mut accs = [0.0f64; 3];
        for (i, &b) in bits.iter().enumerate() {
            // the paper warms "all the moving averages" on the training
            // set; a full pass also washes out the batch-norm statistics
            // polluted by the previous (possibly collapsed) configuration
            let (_, acc) = swap_and_evaluate(
                &mut net,
                algo,
                wa_nn::QuantConfig::uniform(b),
                &train_b,
                &val_b,
                0,
            )
            .expect("swap with known-good algorithm");
            accs[i] = acc;
        }
        println!(
            "{:<16} {:>8} {:>8} {:>8}",
            label,
            pct(accs[0]),
            pct(accs[1]),
            pct(accs[2])
        );
        rows.push(Row {
            method: label,
            fp32: accs[0],
            int16: accs[1],
            int8: accs[2],
        });
        accs
    };

    let direct = run("Direct".into(), ConvAlgo::Im2row);
    let f2 = run("Winograd F2".into(), ConvAlgo::Winograd { m: 2 });
    let f4 = run("Winograd F4".into(), ConvAlgo::Winograd { m: 4 });
    let f6 = run("Winograd F6".into(), ConvAlgo::Winograd { m: 6 });

    // headline orderings of Table 1
    assert!(f2[0] > direct[0] - 0.1, "FP32 F2 must track the baseline");
    assert!(f4[0] > direct[0] - 0.1, "FP32 F4 must track the baseline");
    assert!(
        f4[2] < direct[2] - 0.15 && f6[2] < direct[2] - 0.15,
        "INT8 F4/F6 must collapse: F4 {} F6 {} vs direct {}",
        pct(f4[2]),
        pct(f6[2]),
        pct(direct[2])
    );
    assert!(f2[2] > f4[2] - 1e-9, "INT8 F2 must beat or match F4");

    println!("\nShape reproduced: FP32 swaps are safe; quantized large tiles collapse");
    println!("(paper: F4/F6 fall to ~10-19% at INT8/INT16 while F2 holds).");
    save_json("table1", &Json::arr(rows.iter().map(Row::to_json)));
}
