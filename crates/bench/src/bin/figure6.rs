//! **Figure 6**: adapting a standard-convolution pretrained ResNet-18 to
//! its Winograd-aware INT8 F4 counterpart in a few epochs of retraining.
//!
//! Expected shape (paper): adaptation with learnable transforms recovers
//! fastest; from-scratch WA training needs several times the budget; a
//! swap without retraining collapses.

use wa_bench::{pct, prepare, recipe, save_json, Scale};
use wa_core::{evaluate, fit, warm_up, ConvAlgo};
use wa_models::{adapt, convert_convs, set_conv_quant, ModelSpec, ResNet18};
use wa_nn::QuantConfig;
use wa_quant::BitWidth;
use wa_tensor::{Json, SeededRng};

struct Out {
    pretrained_acc: f64,
    swap_only_acc: f64,
    scratch_curve: Vec<f64>,
    adapted_static_curve: Vec<f64>,
    adapted_flex_curve: Vec<f64>,
}

impl Out {
    fn to_json(&self) -> Json {
        Json::obj([
            ("pretrained_acc", Json::from(self.pretrained_acc)),
            ("swap_only_acc", Json::from(self.swap_only_acc)),
            (
                "scratch_curve",
                Json::arr(self.scratch_curve.iter().copied()),
            ),
            (
                "adapted_static_curve",
                Json::arr(self.adapted_static_curve.iter().copied()),
            ),
            (
                "adapted_flex_curve",
                Json::arr(self.adapted_flex_curve.iter().copied()),
            ),
        ])
    }
}

fn main() {
    let scale = Scale::from_env();
    let ds = wa_data::cifar10_like(scale.per_class, scale.img, 7);
    let (train_b, val_b) = prepare(&ds, scale.batch, 5);
    let int8 = QuantConfig::uniform(BitWidth::INT8);
    let budget = scale.epochs.max(8);

    // from-scratch reference
    let scratch_spec = ModelSpec::builder()
        .classes(10)
        .width(scale.width)
        .quant(int8)
        .algo(ConvAlgo::WinogradFlex { m: 4 })
        .build()
        .expect("valid spec");
    let mut scratch =
        ResNet18::from_spec(&scratch_spec, &mut SeededRng::new(31)).expect("valid spec");
    let h_scratch = fit(&mut scratch, &train_b, &val_b, &recipe(budget));

    // pretrain FP32 direct
    let pretrain = |seed: u64| {
        let spec = ModelSpec::builder()
            .classes(10)
            .width(scale.width)
            .build()
            .expect("valid spec");
        let mut net = ResNet18::from_spec(&spec, &mut SeededRng::new(seed)).expect("valid spec");
        let h = fit(&mut net, &train_b, &val_b, &recipe(budget + 2));
        (net, h.final_val_acc())
    };
    let (mut net_flex, pre_acc) = pretrain(32);
    let (mut net_static, _) = pretrain(32);
    let (mut net_swap, _) = pretrain(32);

    // swap-only control
    convert_convs(&mut net_swap, ConvAlgo::Winograd { m: 4 }, 4).expect("known-good algo");
    set_conv_quant(&mut net_swap, int8);
    warm_up(&mut net_swap, &train_b);
    let (_, swap_acc) = evaluate(&mut net_swap, &val_b);

    // adaptation, static vs flex
    let h_static = adapt(
        &mut net_static,
        ConvAlgo::Winograd { m: 4 },
        int8,
        &train_b,
        &val_b,
        &recipe(budget),
        4,
    )
    .expect("known-good algo");
    let h_flex = adapt(
        &mut net_flex,
        ConvAlgo::WinogradFlex { m: 4 },
        int8,
        &train_b,
        &val_b,
        &recipe(budget),
        4,
    )
    .expect("known-good algo");

    let curve = |h: &wa_core::History| h.epochs.iter().map(|e| e.val_acc).collect::<Vec<_>>();
    let show = |label: &str, c: &[f64]| {
        println!(
            "{:<22} best {}  curve: {}",
            label,
            pct(c.iter().cloned().fold(0.0, f64::max)),
            c.iter()
                .map(|a| format!("{:.0}", 100.0 * a))
                .collect::<Vec<_>>()
                .join(" ")
        );
    };
    println!("FP32 direct-conv pretraining: {}", pct(pre_acc));
    println!(
        "swap to INT8 F4 + warm-up (no retraining): {}\n",
        pct(swap_acc)
    );
    show("from scratch (flex)", &curve(&h_scratch));
    show("adapted (static)", &curve(&h_static));
    show("adapted (flex)", &curve(&h_flex));
    println!("\nAdaptation with learned transforms recovers fastest (paper Fig. 6).");

    let out = Out {
        pretrained_acc: pre_acc,
        swap_only_acc: swap_acc,
        scratch_curve: curve(&h_scratch),
        adapted_static_curve: curve(&h_static),
        adapted_flex_curve: curve(&h_flex),
    };
    save_json("figure6", &out.to_json());
}
