//! **Table 4**: SqueezeNet — static vs learned transforms at FP32 and
//! INT8 on CIFAR-10- and CIFAR-100-shaped data.
//!
//! Expected shape (paper): at FP32 everything matches im2row; at INT8,
//! static F4 collapses (79.3% vs 91.2% baseline in the paper) while flex
//! F4 recovers to within a point.

use wa_bench::{pct, prepare, recipe, save_json, Scale};
use wa_core::{fit, ConvAlgo};
use wa_models::{ModelSpec, SqueezeNet};
use wa_nn::QuantConfig;
use wa_quant::BitWidth;
use wa_tensor::{Json, SeededRng};

struct Row {
    config: String,
    bits: String,
    cifar10_like: f64,
    cifar100_like: f64,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("config", Json::from(self.config.clone())),
            ("bits", Json::from(self.bits.clone())),
            ("cifar10_like", Json::from(self.cifar10_like)),
            ("cifar100_like", Json::from(self.cifar100_like)),
        ])
    }
}

fn train(algo: Option<ConvAlgo>, bits: BitWidth, classes: usize, scale: Scale, seed: u64) -> f64 {
    // CIFAR-100-shaped runs need enough examples per class to be
    // learnable at all; SqueezeNet also converges slower than ResNet at
    // this scale, so both datasets get a doubled epoch budget.
    let per_class = if classes == 100 {
        (scale.per_class / 2).max(12)
    } else {
        scale.per_class
    };
    let ds = if classes == 100 {
        wa_data::cifar100_like(per_class, scale.img, 13)
    } else {
        wa_data::cifar10_like(per_class, scale.img, 13)
    };
    let (train_b, val_b) = prepare(&ds, scale.batch, seed);
    let mut rng = SeededRng::new(seed);
    let mut spec = ModelSpec::builder()
        .classes(classes)
        .width(0.25)
        .quant(QuantConfig::uniform(bits));
    if let Some(a) = algo {
        spec = spec.algo(a);
    }
    let mut net =
        SqueezeNet::from_spec(&spec.build().expect("valid spec"), &mut rng).expect("valid spec");
    fit(&mut net, &train_b, &val_b, &recipe(2 * scale.epochs)).best_val_acc()
}

fn main() {
    let scale = Scale::from_env();
    let configs: Vec<(&str, Option<ConvAlgo>, BitWidth)> = vec![
        ("im2row", None, BitWidth::FP32),
        (
            "WAF2 static",
            Some(ConvAlgo::Winograd { m: 2 }),
            BitWidth::FP32,
        ),
        (
            "WAF2 flex",
            Some(ConvAlgo::WinogradFlex { m: 2 }),
            BitWidth::FP32,
        ),
        ("im2row", None, BitWidth::INT8),
        (
            "WAF2 static",
            Some(ConvAlgo::Winograd { m: 2 }),
            BitWidth::INT8,
        ),
        (
            "WAF2 flex",
            Some(ConvAlgo::WinogradFlex { m: 2 }),
            BitWidth::INT8,
        ),
        (
            "WAF4 static",
            Some(ConvAlgo::Winograd { m: 4 }),
            BitWidth::INT8,
        ),
        (
            "WAF4 flex",
            Some(ConvAlgo::WinogradFlex { m: 4 }),
            BitWidth::INT8,
        ),
    ];
    println!("SqueezeNet (8 expand-3×3 convs), Winograd-aware training");
    println!(
        "{:<14} {:>6} {:>14} {:>15}",
        "Conv", "bits", "cifar10-like", "cifar100-like"
    );
    let mut rows = Vec::new();
    let mut int8 = std::collections::HashMap::new();
    for (i, (name, algo, bits)) in configs.iter().enumerate() {
        let c10 = train(*algo, *bits, 10, scale, 40 + i as u64);
        let c100 = train(*algo, *bits, 100, scale, 60 + i as u64);
        println!(
            "{:<14} {:>6} {:>14} {:>15}",
            name,
            bits.to_string(),
            pct(c10),
            pct(c100)
        );
        if *bits == BitWidth::INT8 {
            int8.insert(name.to_string(), c10);
        }
        rows.push(Row {
            config: name.to_string(),
            bits: bits.to_string(),
            cifar10_like: c10,
            cifar100_like: c100,
        });
    }
    let s4 = int8["WAF4 static"];
    let f4 = int8["WAF4 flex"];
    println!(
        "\nINT8 F4: static {} vs flex {} — flex recovers what static loses",
        pct(s4),
        pct(f4)
    );
    assert!(
        f4 >= s4 - 0.02,
        "flex must not trail static at INT8 F4: {} vs {}",
        f4,
        s4
    );
    save_json("table4", &Json::arr(rows.iter().map(Row::to_json)));
}
