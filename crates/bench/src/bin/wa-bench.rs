//! `wa-bench` — open-loop load generator for the wa-serve HTTP edge.
//!
//! ```text
//! wa-bench <http-addr> --model NAME [--make-checkpoint | --checkpoint PATH]
//!          [--clients N] [--rate RPS] [--duration-s S] [--batch N]
//!          [--deadline-ms N] [--timeout-ms N] [--input-size N] [--seed N]
//! ```
//!
//! Fires `rate × duration` `POST /v1/infer` requests at a running
//! `wa-serve --http-port` on a fixed arrival schedule (*open loop*: the
//! schedule does not slow down when the server does, so queueing delay
//! shows up in the latencies instead of being hidden by back-pressure),
//! spread round-robin over `--clients` keep-alive connections.
//!
//! Every response is classified (`ok`, `busy`, `deadline_exceeded`,
//! `shutting_down`, other HTTP errors, protocol/transport errors) and
//! every answered request's end-to-end latency lands in an HDR-style
//! log-bucketed histogram. The run prints a summary (quantiles plus a
//! bucket-level distribution) and writes `results/serve_load.json` with
//! p50/p90/p99/mean/max latency, achieved throughput, the outcome
//! counts, and the run's trace id.
//!
//! Before the load starts, a *trace probe* sends one `infer` carrying a
//! freshly minted `trace_id` and asserts the server echoes it back —
//! then every load request reuses that id, so one grep over the
//! server's structured logs recovers the whole run.
//!
//! `--make-checkpoint` builds a small LeNet in-process and installs it
//! via `POST /v1/models/load` first, so a smoke run needs nothing but a
//! listening server; `--checkpoint PATH` installs an existing
//! one-document checkpoint instead.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use wa_bench::{save_json, HttpClient, LogHistogram};
use wa_models::{ModelKind, ModelSpec, ZooModel};
use wa_obs::TraceId;
use wa_tensor::{Json, SeededRng};

fn usage() -> ! {
    eprintln!(
        "usage: wa-bench <http-addr> --model NAME [--make-checkpoint | --checkpoint PATH] \
         [--clients N] [--rate RPS] [--duration-s S] [--batch N] [--deadline-ms N] \
         [--timeout-ms N] [--input-size N] [--seed N]"
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("wa-bench: {msg}");
    std::process::exit(1);
}

/// Per-thread outcome tally (merged after the run).
#[derive(Default, Clone)]
struct Counters {
    ok: u64,
    busy: u64,
    deadline_exceeded: u64,
    shutting_down: u64,
    http_error: u64,
    protocol_error: u64,
}

impl Counters {
    fn answered(&self) -> u64 {
        self.ok + self.busy + self.deadline_exceeded + self.shutting_down + self.http_error
    }

    fn merge(&mut self, other: &Counters) {
        self.ok += other.ok;
        self.busy += other.busy;
        self.deadline_exceeded += other.deadline_exceeded;
        self.shutting_down += other.shutting_down;
        self.http_error += other.http_error;
        self.protocol_error += other.protocol_error;
    }
}

/// Classifies one reply body into the tally.
fn classify(status: u16, body: &str, tally: &mut Counters) {
    let Ok(doc) = Json::parse(body) else {
        tally.protocol_error += 1;
        return;
    };
    if status == 200 && doc.get("ok") == Some(&Json::Bool(true)) {
        tally.ok += 1;
        return;
    }
    match doc
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(|k| k.as_str())
    {
        Some("busy") => tally.busy += 1,
        Some("deadline_exceeded") => tally.deadline_exceeded += 1,
        Some("shutting_down") => tally.shutting_down += 1,
        Some(_) => tally.http_error += 1,
        None => tally.protocol_error += 1, // non-protocol body
    }
}

/// Simple `--key value` flag map (every flag here takes a value except
/// `--make-checkpoint`).
struct Flags(Vec<(String, String)>);

impl Flags {
    fn parse(args: &[String]) -> Flags {
        let mut out = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let Some(key) = args[i].strip_prefix("--") else {
                usage();
            };
            if key == "make-checkpoint" {
                out.push((key.to_string(), "true".to_string()));
                i += 1;
            } else {
                if i + 1 >= args.len() {
                    usage();
                }
                out.push((key.to_string(), args[i + 1].clone()));
                i += 2;
            }
        }
        Flags(out)
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| fail(format!("bad value for --{key}: `{v}`"))),
        }
    }
}

/// Installs a model over HTTP, from a checkpoint document.
fn load_model(addr: &str, timeout: Duration, name: &str, ckpt: Json) {
    let mut http = HttpClient::connect(addr, Some(timeout))
        .unwrap_or_else(|e| fail(format!("connecting to {addr}: {e}")));
    let body = Json::obj([("name", Json::from(name)), ("checkpoint", ckpt)]).to_string_compact();
    let reply = http
        .post("/v1/models/load", &body)
        .unwrap_or_else(|e| fail(format!("POST /v1/models/load: {e}")));
    if reply.status != 200 {
        fail(format!(
            "loading `{name}` failed ({}): {}",
            reply.status, reply.body
        ));
    }
    println!("loaded `{name}` over HTTP");
}

/// One traced `POST /v1/infer` that must come back with the same
/// `trace_id` it was sent with — proof the server threads the id from
/// edge to response (and, with `WA_LOG=info`, through its flush logs).
fn trace_probe(addr: &str, timeout: Duration, model: &str, shape: &[usize], trace: &str) {
    let mut http = HttpClient::connect(addr, Some(timeout))
        .unwrap_or_else(|e| fail(format!("connecting to {addr}: {e}")));
    let mut full = vec![1];
    full.extend(shape);
    let input = SeededRng::new(1).uniform_tensor(&full, -1.0, 1.0);
    let body = Json::obj([
        ("model", Json::from(model)),
        ("input", input.to_json()),
        ("trace_id", Json::from(trace)),
    ])
    .to_string_compact();
    let reply = http
        .post("/v1/infer", &body)
        .unwrap_or_else(|e| fail(format!("trace probe POST /v1/infer: {e}")));
    let doc = Json::parse(&reply.body)
        .unwrap_or_else(|e| fail(format!("unparsable trace-probe body: {e}")));
    let echoed = doc.get("trace_id").and_then(|t| t.as_str());
    if reply.status != 200 || doc.get("ok") != Some(&Json::Bool(true)) {
        fail(format!(
            "trace probe failed ({}): {}",
            reply.status, reply.body
        ));
    }
    if echoed != Some(trace) {
        fail(format!(
            "server did not echo the trace id: sent `{trace}`, got {echoed:?}"
        ));
    }
    println!("trace probe ok: server echoed trace_id {trace}");
}

/// The model's `[C, H, W]` sample shape, from `GET /v1/models`.
fn sample_shape(addr: &str, timeout: Duration, name: &str) -> Vec<usize> {
    let mut http = HttpClient::connect(addr, Some(timeout))
        .unwrap_or_else(|e| fail(format!("connecting to {addr}: {e}")));
    let reply = http
        .get("/v1/models")
        .unwrap_or_else(|e| fail(format!("GET /v1/models: {e}")));
    let doc = Json::parse(&reply.body)
        .unwrap_or_else(|e| fail(format!("unparsable /v1/models body: {e}")));
    let models = doc.get("models").and_then(|m| m.as_arr()).unwrap_or(&[]);
    let Some(row) = models
        .iter()
        .find(|m| m.get("name").and_then(|v| v.as_str()) == Some(name))
    else {
        fail(format!(
            "no model `{name}` on the server (pass --make-checkpoint or --checkpoint PATH)"
        ));
    };
    row.get("sample_shape")
        .and_then(|s| s.as_arr())
        .map(|a| {
            a.iter()
                .filter_map(|v| v.as_f64())
                .map(|f| f as usize)
                .collect()
        })
        .unwrap_or_else(|| fail("/v1/models row lacks sample_shape"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(addr) = args.first().filter(|a| !a.starts_with("--")) else {
        usage()
    };
    let flags = Flags::parse(&args[1..]);
    let model = flags.get("model").unwrap_or_else(|| usage()).to_string();
    let clients: usize = flags.parsed("clients", 4).max(1);
    let rate: f64 = flags.parsed("rate", 50.0);
    let duration_s: f64 = flags.parsed("duration-s", 5.0);
    let batch: usize = flags.parsed("batch", 1).max(1);
    let deadline_ms: u64 = flags.parsed("deadline-ms", 0);
    let timeout = Duration::from_millis(flags.parsed("timeout-ms", 10_000u64).max(1));
    let seed: u64 = flags.parsed("seed", 7);
    if !rate.is_finite() || rate <= 0.0 || !duration_s.is_finite() || duration_s <= 0.0 {
        fail("--rate and --duration-s must be positive");
    }

    // optional model installation, then shape discovery
    if flags.get("make-checkpoint").is_some() {
        let spec = ModelSpec::builder()
            .classes(10)
            .input_size(flags.parsed("input-size", 12))
            .build()
            .unwrap_or_else(|e| fail(e));
        let mut rng = SeededRng::new(seed);
        let mut lenet =
            ZooModel::from_spec(ModelKind::LeNet, &spec, &mut rng).unwrap_or_else(|e| fail(e));
        let ckpt = lenet.to_full_checkpoint().unwrap_or_else(|e| fail(e));
        load_model(addr, timeout, &model, ckpt.to_json());
    } else if let Some(path) = flags.get("checkpoint") {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("reading {path}: {e}")));
        let ckpt = Json::parse(&text).unwrap_or_else(|e| fail(format!("parsing {path}: {e}")));
        load_model(addr, timeout, &model, ckpt);
    }
    let shape = sample_shape(addr, timeout, &model);

    // one trace id for the whole run: the probe proves the server echoes
    // it end-to-end, then every load request carries it so server-side
    // logs for this run are greppable by a single id
    let run_trace = TraceId::mint().to_string();
    trace_probe(addr, timeout, &model, &shape, &run_trace);

    // pre-serialized request bodies (a few variants so batches differ)
    let mut rng = SeededRng::new(seed ^ 0x9e37_79b9);
    let mut full = vec![batch];
    full.extend(&shape);
    let bodies: Vec<String> = (0..4)
        .map(|_| {
            let input = rng.uniform_tensor(&full, -1.0, 1.0);
            let mut fields = vec![
                ("model".to_string(), Json::from(model.as_str())),
                ("input".to_string(), input.to_json()),
                ("trace_id".to_string(), Json::from(run_trace.as_str())),
            ];
            if deadline_ms > 0 {
                fields.push(("deadline_ms".to_string(), Json::from(deadline_ms as f64)));
            }
            Json::Obj(fields).to_string_compact()
        })
        .collect();

    // open loop: request i is *due* at t0 + i/rate, regardless of how
    // fast the server answers — thread t sends requests t, t+C, t+2C, …
    let total = (rate * duration_s).ceil() as usize;
    println!(
        "firing {total} requests of {batch} sample(s) at {rate:.1} req/s \
         over {clients} connection(s)…"
    );
    let merged: Mutex<(Counters, LogHistogram)> =
        Mutex::new((Counters::default(), LogHistogram::new()));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for thread in 0..clients {
            let bodies = &bodies;
            let merged = &merged;
            s.spawn(move || {
                let mut tally = Counters::default();
                let mut hist = LogHistogram::new();
                let mut http = HttpClient::connect(addr, Some(timeout)).ok();
                let mut i = thread;
                while i < total {
                    let due = t0 + Duration::from_secs_f64(i as f64 / rate);
                    if let Some(wait) = due.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    if http.is_none() {
                        http = HttpClient::connect(addr, Some(timeout)).ok();
                    }
                    let Some(conn) = http.as_mut() else {
                        tally.protocol_error += 1;
                        i += clients;
                        continue;
                    };
                    let sent = Instant::now();
                    match conn.post("/v1/infer", &bodies[i % bodies.len()]) {
                        Ok(reply) => {
                            hist.record(sent.elapsed().as_micros() as u64);
                            classify(reply.status, &reply.body, &mut tally);
                        }
                        Err(_) => {
                            // transport failure: drop the connection and
                            // let the next request reconnect
                            tally.protocol_error += 1;
                            http = None;
                        }
                    }
                    i += clients;
                }
                let mut merged = merged.lock().expect("merge lock");
                merged.0.merge(&tally);
                merged.1.merge(&hist);
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64().max(1e-9);
    let (tally, hist) = merged.into_inner().expect("merge lock");

    let ms = |micros: u64| micros as f64 / 1e3;
    let quantile_ms = |q: f64| hist.quantile(q).map(ms).unwrap_or(0.0);
    let (p50, p90, p99) = (quantile_ms(0.5), quantile_ms(0.9), quantile_ms(0.99));
    let rps = tally.ok as f64 / elapsed;
    let sps = (tally.ok as usize * batch) as f64 / elapsed;
    println!(
        "{} answered of {total} sent in {elapsed:.2}s: {} ok ({rps:.1} req/s, {sps:.1} samples/s), \
         {} busy, {} deadline_exceeded, {} shutting_down, {} http errors, {} protocol errors",
        tally.answered(),
        tally.ok,
        tally.busy,
        tally.deadline_exceeded,
        tally.shutting_down,
        tally.http_error,
        tally.protocol_error,
    );
    println!(
        "latency: p50 {p50:.2}ms, p90 {p90:.2}ms, p99 {p99:.2}ms, mean {:.2}ms, max {:.2}ms",
        ms(hist.mean() as u64),
        ms(hist.max()),
    );
    // bucket-level distribution (buckets holding >=1% of samples, so the
    // dump stays short while showing the latency shape)
    if hist.count() > 0 {
        println!("latency distribution ({} answered):", hist.count());
        let total = hist.count();
        let mut cum = 0u64;
        for b in hist.buckets() {
            cum += b.count;
            if b.count * 100 >= total {
                println!(
                    "  <= {:>10.2}ms  {:>7}  ({:5.1}% cum)",
                    ms(b.le),
                    b.count,
                    cum as f64 * 100.0 / total as f64,
                );
            }
        }
    }

    save_json(
        "serve_load",
        &Json::obj([
            ("name", Json::from("serve_load")),
            (
                "config",
                Json::obj([
                    ("clients", Json::from(clients)),
                    ("rate_rps", Json::from(rate)),
                    ("duration_s", Json::from(duration_s)),
                    ("batch", Json::from(batch)),
                    ("deadline_ms", Json::from(deadline_ms as f64)),
                    ("model", Json::from(model.as_str())),
                ]),
            ),
            ("sent", Json::from(total)),
            ("trace_id", Json::from(run_trace.as_str())),
            ("answered", Json::from(tally.answered() as f64)),
            (
                "outcomes",
                Json::obj([
                    ("ok", Json::from(tally.ok as f64)),
                    ("busy", Json::from(tally.busy as f64)),
                    (
                        "deadline_exceeded",
                        Json::from(tally.deadline_exceeded as f64),
                    ),
                    ("shutting_down", Json::from(tally.shutting_down as f64)),
                    ("http_error", Json::from(tally.http_error as f64)),
                    ("protocol_error", Json::from(tally.protocol_error as f64)),
                ]),
            ),
            (
                "throughput",
                Json::obj([
                    ("requests_per_sec", Json::from(rps)),
                    ("samples_per_sec", Json::from(sps)),
                ]),
            ),
            (
                "latency_ms",
                Json::obj([
                    ("p50", Json::from(p50)),
                    ("p90", Json::from(p90)),
                    ("p99", Json::from(p99)),
                    ("mean", Json::from(ms(hist.mean() as u64))),
                    ("max", Json::from(ms(hist.max()))),
                ]),
            ),
        ]),
    );
}
