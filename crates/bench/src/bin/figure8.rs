//! **Figure 8**: per-stage latency breakdown of ResNet-18 layers on both
//! cores, normalized to im2row.
//!
//! Expected shape (paper): Winograd ratios > 1 on the 3→32 stem (its
//! transforms are 65–75% of cost), well below 1 on the 128-channel
//! mid-network layer on the A73, and less favourable on the A53.

use wa_bench::save_json;
use wa_latency::{figure8_bars, Core, LatAlgo, NormalizedBar};
use wa_tensor::Json;

fn bars_json(bars: &[NormalizedBar]) -> Json {
    Json::arr(bars.iter().map(|b| {
        Json::obj([
            ("in_ch", Json::from(b.shape.in_ch)),
            ("out_ch", Json::from(b.shape.out_ch)),
            ("out_h", Json::from(b.shape.out_h)),
            ("out_w", Json::from(b.shape.out_w)),
            ("algo", Json::from(b.algo.to_string())),
            ("input_stage_ms", Json::from(b.breakdown.input_stage_ms)),
            ("gemm_ms", Json::from(b.breakdown.gemm_ms)),
            ("output_stage_ms", Json::from(b.breakdown.output_stage_ms)),
            ("ratio_vs_im2row", Json::from(b.ratio_vs_im2row)),
        ])
    }))
}

fn main() {
    for core in [Core::CortexA73, Core::CortexA53] {
        println!("\n=== {core} (FP32, default transforms) ===");
        println!(
            "{:<24} {:>8} {:>9} {:>9} {:>9} {:>8} {:>8}",
            "layer", "algo", "input", "gemm", "output", "ratio", "tf%"
        );
        for bar in figure8_bars(core) {
            println!(
                "{:<24} {:>8} {:>9.3} {:>9.3} {:>9.3} {:>7.2}x {:>7.0}%",
                format!(
                    "{}x{} {}->{}",
                    bar.shape.out_h, bar.shape.out_w, bar.shape.in_ch, bar.shape.out_ch
                ),
                bar.algo.to_string(),
                bar.breakdown.input_stage_ms,
                bar.breakdown.gemm_ms,
                bar.breakdown.output_stage_ms,
                bar.ratio_vs_im2row,
                100.0 * bar.breakdown.transform_fraction(),
            );
        }
    }
    let a73 = figure8_bars(Core::CortexA73);
    let stem_f4 = a73
        .iter()
        .find(|b| b.shape.in_ch == 3 && b.algo == LatAlgo::Winograd { m: 4 })
        .unwrap();
    assert!(stem_f4.ratio_vs_im2row > 1.0, "stem F4 must lose to im2row");
    let mid_f4 = a73
        .iter()
        .find(|b| b.shape.in_ch == 128 && b.algo == LatAlgo::Winograd { m: 4 })
        .unwrap();
    assert!(
        mid_f4.ratio_vs_im2row < 0.8,
        "mid-layer F4 must win on the A73"
    );
    println!("\nStem transforms dominate; mid-network Winograd wins (paper §6.2).");
    save_json(
        "figure8",
        &Json::obj([
            ("a73", bars_json(&figure8_bars(Core::CortexA73))),
            ("a53", bars_json(&figure8_bars(Core::CortexA53))),
        ]),
    );
}
