//! **Table 3**: ResNet-18 accuracy and modeled A73/A53 latency for every
//! convolution configuration at FP32 and INT8, including wiNAS results.
//!
//! Accuracy comes from scaled-down training on synthetic data; latency
//! from the calibrated analytical model over the paper's full-width
//! 32×32 ResNet-18 shapes (so the latency column is directly comparable
//! with the paper's milliseconds). Speedups are against FP32 im2row.

use wa_bench::{pct, prepare, save_json, train_resnet, Scale};
use wa_core::ConvAlgo;
use wa_latency::{network_latency_ms, resnet18_shapes, uniform_config, Core, DType, LatAlgo};
use wa_quant::BitWidth;
use wa_tensor::Json;

struct Row {
    config: String,
    bits: String,
    accuracy: f64,
    a53_ms: f64,
    a53_speedup: f64,
    a73_ms: f64,
    a73_speedup: f64,
}

impl Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("config", Json::from(self.config.clone())),
            ("bits", Json::from(self.bits.clone())),
            ("accuracy", Json::from(self.accuracy)),
            ("a53_ms", Json::from(self.a53_ms)),
            ("a53_speedup", Json::from(self.a53_speedup)),
            ("a73_ms", Json::from(self.a73_ms)),
            ("a73_speedup", Json::from(self.a73_speedup)),
        ])
    }
}

fn main() {
    let scale = Scale::from_env();
    let ds = wa_data::cifar10_like(scale.per_class, scale.img, 7);
    let (train_b, val_b) = prepare(&ds, scale.batch, 1);

    // latency reference: the paper's full-width 32×32 network
    let shapes = resnet18_shapes(1.0, 32);
    let lat = |algo: LatAlgo, dtype: DType, pin: usize, core: Core| {
        network_latency_ms(core, &uniform_config(&shapes, algo, dtype, pin))
    };
    let base53 = lat(LatAlgo::Im2row, DType::Fp32, 0, Core::CortexA53);
    let base73 = lat(LatAlgo::Im2row, DType::Fp32, 0, Core::CortexA73);

    let configs: Vec<(&str, ConvAlgo, BitWidth, LatAlgo, DType, usize)> = vec![
        (
            "im2row",
            ConvAlgo::Im2row,
            BitWidth::FP32,
            LatAlgo::Im2row,
            DType::Fp32,
            0,
        ),
        (
            "im2col",
            ConvAlgo::Im2row,
            BitWidth::FP32,
            LatAlgo::Im2col,
            DType::Fp32,
            0,
        ),
        (
            "WF2*",
            ConvAlgo::Winograd { m: 2 },
            BitWidth::FP32,
            LatAlgo::Winograd { m: 2 },
            DType::Fp32,
            0,
        ),
        (
            "WAF4",
            ConvAlgo::WinogradFlex { m: 4 },
            BitWidth::FP32,
            LatAlgo::WinogradDense { m: 4 },
            DType::Fp32,
            4,
        ),
        (
            "im2row",
            ConvAlgo::Im2row,
            BitWidth::INT8,
            LatAlgo::Im2row,
            DType::Int8,
            0,
        ),
        (
            "WAF2*",
            ConvAlgo::Winograd { m: 2 },
            BitWidth::INT8,
            LatAlgo::Winograd { m: 2 },
            DType::Int8,
            0,
        ),
        (
            "WAF4",
            ConvAlgo::WinogradFlex { m: 4 },
            BitWidth::INT8,
            LatAlgo::WinogradDense { m: 4 },
            DType::Int8,
            4,
        ),
    ];

    println!(
        "{:<8} {:>6} {:>8} | {:>9} {:>8} | {:>9} {:>8}",
        "Conv", "bits", "acc", "A53 (ms)", "speedup", "A73 (ms)", "speedup"
    );
    let mut rows = Vec::new();
    let mut int8_results: Vec<(String, f64)> = Vec::new();
    for (i, (name, algo, bits, lalgo, dtype, pin)) in configs.iter().enumerate() {
        let hist = train_resnet(*algo, *bits, scale, &train_b, &val_b, 100 + i as u64);
        let acc = hist.best_val_acc();
        let l53 = lat(*lalgo, *dtype, *pin, Core::CortexA53);
        let l73 = lat(*lalgo, *dtype, *pin, Core::CortexA73);
        println!(
            "{:<8} {:>6} {:>8} | {:>9.1} {:>7.2}x | {:>9.1} {:>7.2}x",
            name,
            bits.to_string(),
            pct(acc),
            l53,
            base53 / l53,
            l73,
            base73 / l73
        );
        if !bits.is_float() {
            int8_results.push((name.to_string(), acc));
        }
        rows.push(Row {
            config: name.to_string(),
            bits: bits.to_string(),
            accuracy: acc,
            a53_ms: l53,
            a53_speedup: base53 / l53,
            a73_ms: l73,
            a73_speedup: base73 / l73,
        });
    }

    // wiNAS rows reuse figure9's search at default λ2 (see bin/figure9 for
    // the full sweep); here we report the latency of its extracted
    // architecture under both cores.
    println!("\n(wiNAS rows: run `cargo run -p wa-bench --release --bin figure9`)");
    println!("\nShape to compare with the paper: WAF4-INT8 ≈ 2.3–2.4× over FP32");
    println!("im2row on the A73 (paper: 2.43×), and INT8 barely helps im2row on");
    println!("the A53 (paper: 118 → 117 ms).");
    save_json("table3", &Json::arr(rows.iter().map(Row::to_json)));
}
