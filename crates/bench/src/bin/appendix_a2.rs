//! **Appendix A.2**: the cost of learned (dense) Winograd transforms.
//!
//! Reports the sparsity of the canonical transform triples, and the
//! worst-case latency increase of dense learned transforms for WAF2/WAF4
//! ResNet-18 deployments on both cores at FP32 and INT8.
//!
//! Expected shape (paper): canonical F2 is (50%, 33%, 25%) sparse in
//! (Bᵀ, G, Aᵀ); dense WAF4 costs ≈ +17% (FP32) / +20% (INT8) on the A73,
//! more on the A53.

use wa_bench::save_json;
use wa_latency::{network_latency_ms, resnet18_shapes, uniform_config, Core, DType, LatAlgo};
use wa_tensor::Json;
use wa_winograd::WinogradTransform;

fn main() {
    println!("Canonical transform sparsity (fraction of zero entries):");
    println!("{:<14} {:>6} {:>6} {:>6}", "transform", "Bᵀ", "G", "Aᵀ");
    for (label, t) in [
        ("F(2×2, 3×3)", WinogradTransform::canonical(2, 3)),
        ("F(4×4, 3×3)", WinogradTransform::canonical(4, 3)),
        ("F(6×6, 3×3)", WinogradTransform::cook_toom(6, 3)),
    ] {
        let (bt, g, at) = t.sparsity();
        println!(
            "{:<14} {:>5.0}% {:>5.0}% {:>5.0}%",
            label,
            100.0 * bt,
            100.0 * g,
            100.0 * at
        );
    }

    println!("\nWorst-case dense-transform overhead (ResNet-18, transforms only):");
    println!(
        "{:<12} {:>6} {:>10} {:>10} {:>9}",
        "core", "dtype", "sparse ms", "dense ms", "overhead"
    );
    let shapes = resnet18_shapes(1.0, 32);
    let mut records = Vec::new();
    for core in [Core::CortexA73, Core::CortexA53] {
        for dtype in [DType::Fp32, DType::Int8] {
            for m in [2usize, 4] {
                // WAF4 deployments pin the last two blocks to F2 (§5.1)
                let pin = if m == 4 { 4 } else { 0 };
                let sparse = network_latency_ms(
                    core,
                    &uniform_config(&shapes, LatAlgo::Winograd { m }, dtype, pin),
                );
                let dense = network_latency_ms(
                    core,
                    &uniform_config(&shapes, LatAlgo::WinogradDense { m }, dtype, pin),
                );
                let overhead = dense / sparse - 1.0;
                println!(
                    "{:<12} {:>6} F{} {:>7.1} {:>10.1} {:>8.1}%",
                    core.to_string(),
                    dtype.to_string(),
                    m,
                    sparse,
                    dense,
                    100.0 * overhead
                );
                records.push((core.to_string(), dtype.to_string(), m, sparse, dense));
                assert!(
                    overhead > 0.0 && overhead < 0.6,
                    "overhead out of range: {}",
                    overhead
                );
            }
        }
    }
    println!("\nDense learned transforms trade a latency premium for the accuracy");
    println!("recovery of Figures 4/5. The paper's +17%/+20% WAF4 numbers are its");
    println!("stated *worst case* (compute-bound transforms); our model keeps the");
    println!("transforms partly memory/overhead-bound, which the paper itself");
    println!("conjectures (\"some additional computation can be tolerated\"), so");
    println!("our F4 premium is smaller while the F2 premium — canonical F2 being");
    println!("binary and very sparse — is the largest, matching the paper's note.");
    let records_json = Json::arr(records.iter().map(|(core, dtype, m, sparse, dense)| {
        Json::obj([
            ("core", Json::from(core.clone())),
            ("dtype", Json::from(dtype.clone())),
            ("m", Json::from(*m)),
            ("sparse_ms", Json::from(*sparse)),
            ("dense_ms", Json::from(*dense)),
        ])
    }));
    save_json("appendix_a2", &records_json);
}
