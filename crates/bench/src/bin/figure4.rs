//! **Figure 4**: ResNet-18 accuracy vs width multiplier at several
//! bit-widths for im2row / F2 / F4 (± flex).
//!
//! Expected shape (paper): at FP32 all algorithms tie at every width; as
//! precision drops, static large-tile curves fall away from im2row while
//! `-flex` curves stay strictly above their static counterparts;
//! accuracy scales with width for every configuration.

use wa_bench::{pct, prepare, save_json, train_resnet, Scale};
use wa_core::ConvAlgo;
use wa_quant::BitWidth;
use wa_tensor::Json;

struct Point {
    width: f64,
    bits: String,
    algo: String,
    accuracy: f64,
}

impl Point {
    fn to_json(&self) -> Json {
        Json::obj([
            ("width", Json::from(self.width)),
            ("bits", Json::from(self.bits.clone())),
            ("algo", Json::from(self.algo.clone())),
            ("accuracy", Json::from(self.accuracy)),
        ])
    }
}

fn main() {
    let scale = Scale::from_env();
    let full = std::env::var("WA_FULL").map(|v| v == "1").unwrap_or(false);
    let widths: Vec<f64> = if full {
        vec![0.125, 0.25, 0.5]
    } else {
        vec![0.125, 0.25]
    };
    let bit_list = if full {
        vec![
            BitWidth::FP32,
            BitWidth::INT16,
            BitWidth::INT10,
            BitWidth::INT8,
        ]
    } else {
        vec![BitWidth::FP32, BitWidth::INT8]
    };
    let algos: Vec<(&str, ConvAlgo)> = vec![
        ("im2row", ConvAlgo::Im2row),
        ("F4", ConvAlgo::Winograd { m: 4 }),
        ("F4-flex", ConvAlgo::WinogradFlex { m: 4 }),
    ];

    let ds = wa_data::cifar10_like(scale.per_class, scale.img, 7);
    let (train_b, val_b) = prepare(&ds, scale.batch, 1);

    let mut points = Vec::new();
    for &bits in &bit_list {
        println!("\nResNet-18 {} — accuracy vs width", bits);
        print!("{:<10}", "width");
        for (name, _) in &algos {
            print!(" {:>9}", name);
        }
        println!();
        for &w in &widths {
            print!("{:<10}", w);
            for (j, (name, algo)) in algos.iter().enumerate() {
                let s = Scale { width: w, ..scale };
                let acc =
                    train_resnet(*algo, bits, s, &train_b, &val_b, 7 + j as u64).best_val_acc();
                print!(" {:>9}", pct(acc));
                points.push(Point {
                    width: w,
                    bits: bits.to_string(),
                    algo: name.to_string(),
                    accuracy: acc,
                });
            }
            println!();
        }
    }

    // headline: at INT8, flex F4 ≥ static F4 on every width
    let int8 = |algo: &str, w: f64| {
        points
            .iter()
            .find(|p| p.bits == "INT8" && p.algo == algo && p.width == w)
            .map(|p| p.accuracy)
            .unwrap_or(0.0)
    };
    for &w in &widths {
        let s = int8("F4", w);
        let f = int8("F4-flex", w);
        println!(
            "width {:>5}: INT8 F4 static {} vs flex {}",
            w,
            pct(s),
            pct(f)
        );
    }
    save_json("figure4", &Json::arr(points.iter().map(Point::to_json)));
}
