//! **Figure 9** (and the wiNAS rows of Table 3): per-layer architectures
//! found by wiNAS on the ResNet-18 macro-architecture, for the WA space
//! at INT8 and the WA-Q space, at two latency weights λ₂.
//!
//! Expected shape (paper): higher λ₂ yields faster architectures; the
//! `-Q` search keeps early layers at higher precision; 1×1/stem layers
//! stay on im2row by construction.

use wa_bench::{pct, prepare, save_json, Scale};
use wa_latency::Core;
use wa_nas::{MacroArch, SearchSpace, WiNas, WiNasConfig};
use wa_quant::BitWidth;
use wa_tensor::{Json, SeededRng};

struct Found {
    space: String,
    lambda2: f32,
    expected_latency_ms: f64,
    val_acc: f64,
    layers: Vec<String>,
}

impl Found {
    fn to_json(&self) -> Json {
        Json::obj([
            ("space", Json::from(self.space.clone())),
            ("lambda2", Json::from(self.lambda2)),
            ("expected_latency_ms", Json::from(self.expected_latency_ms)),
            ("val_acc", Json::from(self.val_acc)),
            ("layers", Json::arr(self.layers.iter().cloned())),
        ])
    }
}

fn main() {
    let scale = Scale::from_env();
    let ds = wa_data::cifar10_like(scale.per_class, scale.img, 7);
    let (train_b, val_b) = prepare(&ds, scale.batch, 3);
    let arch = MacroArch::resnet18(10, scale.width, scale.img);
    println!(
        "wiNAS on ResNet-18 macro-architecture ({} searchable 3×3 layers)\n",
        arch.slot_count()
    );

    let mut found = Vec::new();
    for (space, label) in [
        (SearchSpace::wa(BitWidth::INT8), "wiNAS-WA INT8"),
        (SearchSpace::wa_q(), "wiNAS-WA-Q"),
    ] {
        for lambda2 in [0.005f32, 2.0] {
            let cfg = WiNasConfig {
                epochs: scale.nas_epochs,
                lambda2,
                arch_lr: 0.2,
                core: Core::CortexA73,
                seed: 11,
                ..WiNasConfig::default()
            };
            let mut rng = SeededRng::new(17 + (lambda2 * 1000.0) as u64);
            let mut nas =
                WiNas::new(&arch, space.clone(), cfg, &mut rng).expect("valid search space");
            let log = nas.search(&train_b, &val_b);
            let last = log.last().unwrap();
            let layers: Vec<String> = nas.extract().iter().map(|c| c.to_string()).collect();
            println!(
                "{label:<16} λ₂={lambda2:<6} E[lat] {:>7.2} ms  val acc {:>6}",
                last.expected_latency_ms,
                pct(last.val_acc)
            );
            println!("  input -> im2row(stem) -> {} -> FC\n", layers.join(" -> "));
            found.push(Found {
                space: label.to_string(),
                lambda2,
                expected_latency_ms: last.expected_latency_ms,
                val_acc: last.val_acc,
                layers,
            });
        }
    }
    // monotonicity: within each space, strong latency pressure must not
    // yield a slower architecture (small slack absorbs search noise)
    for pair in found.chunks(2) {
        assert!(
            pair[1].expected_latency_ms <= pair[0].expected_latency_ms * 1.1,
            "{}: higher λ₂ should reduce expected latency ({:.2} vs {:.2})",
            pair[0].space,
            pair[0].expected_latency_ms,
            pair[1].expected_latency_ms
        );
    }
    println!("Higher λ₂ trades accuracy headroom for speed (paper Fig. 9, Table 3).");
    save_json("figure9", &Json::arr(found.iter().map(Found::to_json)));
}
