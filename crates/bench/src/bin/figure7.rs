//! **Figure 7**: the dense latency grid — im2row vs F2/F4/F6 across
//! output sizes (2…24) and channel configurations (3→32 … 256→512),
//! modeled on the Cortex-A73 at FP32 (and INT8 with `WA_INT8=1`).
//!
//! Expected shape (paper): (1) im2row is consistently optimal for the
//! input layer; (2) the F2/F4/F6 choice is a function of output
//! width/height (tile waste), not of the channel configuration; (3)
//! latency grows monotonically with size for each algorithm.

use wa_bench::save_json;
use wa_latency::{figure7_sweep, Core, DType, LatAlgo, FIGURE7_CHANNELS, FIGURE7_WIDTHS};
use wa_tensor::Json;

fn main() {
    let dtype = if std::env::var("WA_INT8").map(|v| v == "1").unwrap_or(false) {
        DType::Int8
    } else {
        DType::Fp32
    };
    let cells = figure7_sweep(Core::CortexA73, dtype);
    println!("Latency (ms) of convolving increasingly larger inputs — Cortex-A73 {dtype}\n");
    print!("{:>5}", "outW");
    for (ic, oc) in FIGURE7_CHANNELS {
        print!(" | {:^33}", format!("{} -> {}", ic, oc));
    }
    println!();
    print!("{:>5}", "");
    for _ in FIGURE7_CHANNELS {
        print!(" | {:>7} {:>7} {:>7} {:>9}", "im2row", "F2", "F4", "F6");
    }
    println!();
    for &ow in &FIGURE7_WIDTHS {
        print!("{:>5}", ow);
        for &(ic, oc) in &FIGURE7_CHANNELS {
            print!(" |");
            for algo in [
                LatAlgo::Im2row,
                LatAlgo::Winograd { m: 2 },
                LatAlgo::Winograd { m: 4 },
                LatAlgo::Winograd { m: 6 },
            ] {
                let c = cells
                    .iter()
                    .find(|c| c.out_w == ow && c.in_ch == ic && c.out_ch == oc && c.algo == algo)
                    .unwrap();
                print!(" {:>8.3}", c.latency_ms);
            }
        }
        println!();
    }

    // assertions on the paper's three observations
    // (1) stem column: im2row optimal at every size
    for &ow in &FIGURE7_WIDTHS {
        let best = cells
            .iter()
            .filter(|c| c.in_ch == 3 && c.out_w == ow)
            .min_by(|a, b| a.latency_ms.partial_cmp(&b.latency_ms).unwrap())
            .unwrap();
        assert_eq!(
            best.algo,
            LatAlgo::Im2row,
            "stem at outW={} must prefer im2row",
            ow
        );
    }
    // (2) winograd winner per outW is channel-invariant for deep configs
    for &ow in &FIGURE7_WIDTHS[2..] {
        let winner = |ic: usize, oc: usize| {
            cells
                .iter()
                .filter(|c| {
                    c.in_ch == ic && c.out_ch == oc && c.out_w == ow && c.algo != LatAlgo::Im2row
                })
                .min_by(|a, b| a.latency_ms.partial_cmp(&b.latency_ms).unwrap())
                .unwrap()
                .algo
        };
        assert_eq!(
            winner(128, 192),
            winner(256, 512),
            "Winograd winner at outW={} should not depend on channels",
            ow
        );
    }
    println!("\n(1) im2row wins the 3→32 input column at every size;");
    println!("(2) the F2/F4/F6 winner depends on output size, not channels;");
    println!("(3) compare with the paper's Figure 7 milliseconds directly.");
    let cells_json = Json::arr(cells.iter().map(|c| {
        Json::obj([
            ("out_w", Json::from(c.out_w)),
            ("in_ch", Json::from(c.in_ch)),
            ("out_ch", Json::from(c.out_ch)),
            ("algo", Json::from(c.algo.to_string())),
            ("latency_ms", Json::from(c.latency_ms)),
        ])
    }));
    save_json("figure7", &cells_json);
}
