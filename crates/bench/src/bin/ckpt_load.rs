//! **Checkpoint load**: JSON parse vs binary-container decode for a
//! calibrated int8 ResNet-18 checkpoint — the measurement behind the
//! container's cold-start claim.
//!
//! The run exports one quantized ResNet-18 to both formats, then times
//! `FullCheckpoint::from_json_str` against `wa_nn::read_checkpoint` over
//! several repetitions (best-of, so a stray page fault can't flatter
//! either side). Both decodes must reproduce the original document
//! exactly — a fast loader that loses calibration state would be
//! worthless. Results land in `results/checkpoint_load.json` as a
//! [`wa_bench::BenchRecord`]; with `WA_ASSERT_SCALING=1` (set by CI) the
//! run asserts the binary decode is at least 10x faster than the JSON
//! parse.

use std::time::Instant;

use wa_bench::BenchRecord;
use wa_core::ConvAlgo;
use wa_models::{ModelKind, ModelSpec, ZooModel};
use wa_nn::{FullCheckpoint, Layer, QuantConfig, Tape};
use wa_quant::BitWidth;
use wa_tensor::SeededRng;

/// Best-of-`runs` wall time for one decode, in microseconds.
fn best_micros(runs: usize, decode: impl Fn()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let t0 = Instant::now();
        decode();
        best = best.min(t0.elapsed().as_secs_f64() * 1e6);
    }
    best
}

fn main() {
    let mut rng = SeededRng::new(17);
    // quarter-width keeps the export around a million parameters: big
    // enough that decode time is parameter-dominated, small enough that
    // the JSON side finishes in CI time
    let spec = ModelSpec::builder()
        .classes(10)
        .width(0.25)
        .algo(ConvAlgo::Winograd { m: 2 })
        .quant(QuantConfig::uniform(BitWidth::INT8))
        .build()
        .expect("static spec");
    let mut model = ZooModel::from_spec(ModelKind::ResNet18, &spec, &mut rng).expect("static spec");
    {
        // calibrate: one training batch settles every observer so the
        // checkpoint carries a full `quant` section
        let warm = rng.uniform_tensor(&[2, 3, 8, 8], -1.0, 1.0);
        let mut tape = Tape::new();
        let x = tape.leaf(warm);
        let _ = model.forward(&mut tape, x, true);
    }
    let doc = model.to_full_checkpoint().expect("export");
    let params: usize = doc.params.params.values().map(|t| t.len()).sum();

    let json_text = doc.to_json().to_string_pretty();
    let container = wa_nn::write_checkpoint(&doc);
    println!(
        "ResNet-18 int8 w0.25: {params} params, JSON {} bytes, container {} bytes",
        json_text.len(),
        container.len()
    );

    // both decodes must be lossless before their times mean anything
    let from_json = FullCheckpoint::from_json_str(&json_text).expect("JSON parses");
    let from_bin = wa_nn::read_checkpoint(&container).expect("container parses");
    for (label, got) in [("JSON", &from_json), ("binary", &from_bin)] {
        assert_eq!(got.arch, doc.arch, "{label}: arch drifted");
        assert_eq!(got.spec, doc.spec, "{label}: spec drifted");
        assert_eq!(got.quant, doc.quant, "{label}: quant drifted");
        assert_eq!(
            got.params.params, doc.params.params,
            "{label}: params drifted"
        );
    }

    let runs = 5;
    let json_us = best_micros(runs, || {
        let _ = FullCheckpoint::from_json_str(&json_text).expect("JSON parses");
    });
    let bin_us = best_micros(runs, || {
        let _ = wa_nn::read_checkpoint(&container).expect("container parses");
    });
    let speedup = json_us / bin_us;
    println!(
        "JSON parse {json_us:>12.1} us\nbinary decode {bin_us:>9.1} us  (x{speedup:.1} faster)"
    );

    let mut record = BenchRecord::new("checkpoint_load", "micros");
    record.push(
        "ResNet-18 int8 JSON parse",
        json_us,
        &[("params", params as f64), ("bytes", json_text.len() as f64)],
    );
    record.push(
        "ResNet-18 int8 container decode",
        bin_us,
        &[
            ("params", params as f64),
            ("bytes", container.len() as f64),
            ("speedup_vs_json", speedup),
        ],
    );
    record.save();

    if std::env::var_os("WA_ASSERT_SCALING").is_some() {
        assert!(
            speedup >= 10.0,
            "the binary container must decode at least 10x faster than JSON: \
             {bin_us:.1} us vs {json_us:.1} us (x{speedup:.1})"
        );
    }
}
