//! Load-generation support for the `wa-bench` serving harness: an
//! HDR-style log-bucketed latency histogram and a minimal HTTP/1.1
//! client over `std::net`.
//!
//! The HTTP client lives here (not in `wa-serve`) because the
//! dependency arrow points the other way — `wa-serve`'s binaries use
//! `wa-bench` for result records, so the load generator talks to the
//! serving edge strictly over the wire, the way an external client
//! would.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Sub-buckets per power of two: ~3% relative error per recorded value.
const SUBS: u64 = 32;

/// Number of log-linear buckets (covers the full `u64` range).
const BUCKETS: usize = (64 - 5) * SUBS as usize + SUBS as usize;

/// An HDR-style latency histogram: fixed memory, log-linear buckets
/// (32 per power of two, so every quantile is accurate to ~3%),
/// mergeable across load-generator threads.
#[derive(Clone)]
pub struct LogHistogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket a value falls in: exact below [`SUBS`], log-linear
    /// (top five significant bits) above.
    fn index(value: u64) -> usize {
        if value < SUBS {
            return value as usize;
        }
        let octave = 63 - value.leading_zeros() as u64; // >= 5 here
        ((octave - 4) * SUBS + ((value >> (octave - 5)) & (SUBS - 1))) as usize
    }

    /// The lower edge of a bucket (what quantiles report).
    fn lower_edge(index: usize) -> u64 {
        let index = index as u64;
        if index < SUBS {
            return index;
        }
        let octave = index / SUBS + 4;
        let sub = index % SUBS;
        (1u64 << octave) | (sub << (octave - 5))
    }

    /// Records one value (any unit; callers here use microseconds).
    pub fn record(&mut self, value: u64) {
        self.counts[Self::index(value)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of the recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// The largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as a bucket lower edge, or
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::lower_edge(i));
            }
        }
        Some(self.max)
    }
}

/// One HTTP response: status code + body (headers are consumed).
pub struct HttpReply {
    /// The status code from the status line.
    pub status: u16,
    /// The response body, verbatim.
    pub body: String,
}

/// A minimal blocking HTTP/1.1 client: keep-alive, `Content-Length`
/// framing only — exactly the subset the wa-serve HTTP front-end
/// speaks.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects (optionally bounding connect + per-operation waits).
    ///
    /// # Errors
    ///
    /// Connection or socket-option failures.
    pub fn connect(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
    ) -> std::io::Result<HttpClient> {
        let stream = match timeout {
            None => TcpStream::connect(&addr)?,
            Some(limit) => {
                let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        "address resolved to nothing",
                    )
                })?;
                TcpStream::connect_timeout(&addr, limit)?
            }
        };
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
        })
    }

    /// Sends a `POST` with a JSON body and reads the reply.
    ///
    /// # Errors
    ///
    /// Transport failures or an unparsable response.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<HttpReply> {
        let head = format!(
            "POST {path} HTTP/1.1\r\nHost: wa-bench\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        self.read_reply()
    }

    /// Sends a `GET` and reads the reply.
    ///
    /// # Errors
    ///
    /// Transport failures or an unparsable response.
    pub fn get(&mut self, path: &str) -> std::io::Result<HttpReply> {
        let head =
            format!("GET {path} HTTP/1.1\r\nHost: wa-bench\r\nConnection: keep-alive\r\n\r\n");
        self.writer.write_all(head.as_bytes())?;
        self.writer.flush()?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> std::io::Result<HttpReply> {
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before the status line",
            ));
        }
        let status = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad(format!("malformed status line `{}`", status_line.trim())))?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-headers",
                ));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad(format!("unparsable Content-Length `{value}`")))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body =
            String::from_utf8(body).map_err(|_| bad("response body is not UTF-8".to_string()))?;
        Ok(HttpReply { status, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_close_over_a_wide_range() {
        let mut h = LogHistogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        let p50 = h.quantile(0.5).unwrap() as f64;
        let p99 = h.quantile(0.99).unwrap() as f64;
        // log-linear buckets: within ~4% of the exact rank values
        assert!((p50 - 5000.0).abs() / 5000.0 < 0.04, "p50 = {p50}");
        assert!((p99 - 9900.0).abs() / 9900.0 < 0.04, "p99 = {p99}");
        assert_eq!(h.max(), 10_000);
        assert!((h.mean() - 5000.5).abs() < 1.0);
    }

    #[test]
    fn histogram_merge_matches_recording_everything_in_one() {
        let (mut a, mut b, mut all) = (
            LogHistogram::new(),
            LogHistogram::new(),
            LogHistogram::new(),
        );
        for v in [3u64, 17, 450, 12_345, 999_999] {
            a.record(v);
            all.record(v);
        }
        for v in [1u64, 80, 6_000] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q));
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LogHistogram::new();
        for v in 0..SUBS {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(SUBS - 1));
    }

    #[test]
    fn bucket_edges_are_monotone() {
        let mut last = 0;
        for i in 1..BUCKETS {
            let edge = LogHistogram::lower_edge(i);
            assert!(edge > last, "bucket {i}: {edge} <= {last}");
            last = edge;
        }
        // and indexing round-trips onto the right side of each edge
        for v in [0u64, 1, 31, 32, 33, 1000, 65_537, u64::MAX / 2] {
            let idx = LogHistogram::index(v);
            assert!(LogHistogram::lower_edge(idx) <= v);
        }
    }
}
