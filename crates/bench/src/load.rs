//! Load-generation support for the `wa-bench` serving harness: the
//! shared HDR-style latency histogram (re-exported from [`wa_obs`]) and
//! a minimal HTTP/1.1 client over `std::net`.
//!
//! The HTTP client lives here (not in `wa-serve`) because the
//! dependency arrow points the other way — `wa-serve`'s binaries use
//! `wa-bench` for result records, so the load generator talks to the
//! serving edge strictly over the wire, the way an external client
//! would.
//!
//! The histogram used to be a private copy; it moved to `wa_obs` so the
//! load generator and the server's live metrics bucket latencies
//! identically (a quantile from `wa-bench` and one from `/v1/metrics`
//! are directly comparable).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

pub use wa_obs::LogHistogram;

/// One HTTP response: status code + body (headers are consumed).
pub struct HttpReply {
    /// The status code from the status line.
    pub status: u16,
    /// The response body, verbatim.
    pub body: String,
}

/// A minimal blocking HTTP/1.1 client: keep-alive, `Content-Length`
/// framing only — exactly the subset the wa-serve HTTP front-end
/// speaks.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects (optionally bounding connect + per-operation waits).
    ///
    /// # Errors
    ///
    /// Connection or socket-option failures.
    pub fn connect(
        addr: impl ToSocketAddrs,
        timeout: Option<Duration>,
    ) -> std::io::Result<HttpClient> {
        let stream = match timeout {
            None => TcpStream::connect(&addr)?,
            Some(limit) => {
                let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        "address resolved to nothing",
                    )
                })?;
                TcpStream::connect_timeout(&addr, limit)?
            }
        };
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)?;
        stream.set_nodelay(true)?;
        Ok(HttpClient {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
        })
    }

    /// Sends a `POST` with a JSON body and reads the reply.
    ///
    /// # Errors
    ///
    /// Transport failures or an unparsable response.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<HttpReply> {
        let head = format!(
            "POST {path} HTTP/1.1\r\nHost: wa-bench\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: keep-alive\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        self.read_reply()
    }

    /// Sends a `GET` and reads the reply.
    ///
    /// # Errors
    ///
    /// Transport failures or an unparsable response.
    pub fn get(&mut self, path: &str) -> std::io::Result<HttpReply> {
        let head =
            format!("GET {path} HTTP/1.1\r\nHost: wa-bench\r\nConnection: keep-alive\r\n\r\n");
        self.writer.write_all(head.as_bytes())?;
        self.writer.flush()?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> std::io::Result<HttpReply> {
        let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidData, msg);
        let mut status_line = String::new();
        if self.reader.read_line(&mut status_line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed before the status line",
            ));
        }
        let status = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| bad(format!("malformed status line `{}`", status_line.trim())))?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-headers",
                ));
            }
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|_| bad(format!("unparsable Content-Length `{value}`")))?;
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        let body =
            String::from_utf8(body).map_err(|_| bad("response body is not UTF-8".to_string()))?;
        Ok(HttpReply { status, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // the histogram's own unit tests live in `wa_obs::hist`; this checks
    // the re-export keeps the API the load generator depends on
    #[test]
    fn reexported_histogram_behaves() {
        let (mut a, mut b) = (LogHistogram::new(), LogHistogram::new());
        for v in 1..=1000u64 {
            a.record(v);
        }
        b.record(5_000);
        a.merge(&b);
        assert_eq!(a.count(), 1001);
        assert_eq!(a.max(), 5_000);
        let p50 = a.quantile(0.5).unwrap() as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.04, "p50 = {p50}");
        assert!(a.mean() > 0.0);
    }
}
