//! # wa-bench
//!
//! The benchmark harness: one binary per table/figure of the paper (run
//! with `cargo run -p wa-bench --release --bin <id>`), plus Criterion
//! kernel benches (`cargo bench -p wa-bench`).
//!
//! Every binary prints the same rows/series the paper reports and appends
//! a JSON record under `results/` for `EXPERIMENTS.md`. Absolute numbers
//! differ from the paper (synthetic data, scaled-down training, modeled
//! hardware — see `DESIGN.md`), but orderings and rough factors must
//! match; the binaries assert the headline orderings where meaningful.
//!
//! Set `WA_FULL=1` for larger (slower) runs closer to the paper's scale.

pub mod load;

use std::path::PathBuf;

pub use load::{HttpClient, HttpReply, LogHistogram};
use wa_core::{fit, ConvAlgo, History, LabeledBatch, OptimKind, TrainConfig};
use wa_data::Dataset;
use wa_models::ModelSpec;
use wa_nn::QuantConfig;
use wa_quant::BitWidth;
use wa_tensor::{Json, SeededRng};

/// Experiment scale knobs (env-controlled).
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Images per class for CIFAR-shaped sets.
    pub per_class: usize,
    /// Image side length.
    pub img: usize,
    /// ResNet width multiplier for single-width experiments.
    pub width: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Batch size.
    pub batch: usize,
    /// wiNAS search epochs.
    pub nas_epochs: usize,
}

impl Scale {
    /// Default (CI-friendly) scale, or the larger `WA_FULL=1` scale.
    pub fn from_env() -> Scale {
        if std::env::var("WA_FULL").map(|v| v == "1").unwrap_or(false) {
            Scale {
                per_class: 200,
                img: 32,
                width: 0.25,
                epochs: 30,
                batch: 32,
                nas_epochs: 20,
            }
        } else {
            Scale {
                per_class: 60,
                img: 16,
                width: 0.125,
                epochs: 10,
                batch: 24,
                nas_epochs: 6,
            }
        }
    }
}

/// Standard train/val batch preparation from a dataset.
pub fn prepare(ds: &Dataset, batch: usize, seed: u64) -> (Vec<LabeledBatch>, Vec<LabeledBatch>) {
    let mut rng = SeededRng::new(seed);
    let (train, val) = ds.split(0.8);
    (train.shuffled_batches(batch, &mut rng), val.batches(batch))
}

/// The training recipe shared by all accuracy experiments (paper §5.1:
/// Adam + cosine annealing).
pub fn recipe(epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        optim: OptimKind::Adam { lr: 2e-3 },
        weight_decay: 1e-4,
        cosine_to: Some(1e-5),
    }
}

/// Trains a fresh ResNet-18 with the given algorithm/precision and
/// returns its history (paper policy: last two blocks pinned to F2).
pub fn train_resnet(
    algo: ConvAlgo,
    bits: BitWidth,
    scale: Scale,
    train_b: &[LabeledBatch],
    val_b: &[LabeledBatch],
    seed: u64,
) -> History {
    let mut rng = SeededRng::new(seed);
    let spec = ModelSpec::builder()
        .classes(10)
        .width(scale.width)
        .quant(QuantConfig::uniform(bits))
        .algo(algo)
        .build()
        .expect("bench ResNet spec is statically valid");
    let mut net = wa_models::ResNet18::from_spec(&spec, &mut rng)
        .expect("bench ResNet spec is statically valid");
    fit(&mut net, train_b, val_b, &recipe(scale.epochs))
}

/// A typed benchmark record: one named measurement series, serialized to
/// `results/<name>.json` via [`BenchRecord::save`]. Used by the
/// `throughput` bin (samples/sec vs thread count) and available to any
/// future bench that reports label → value series.
#[derive(Clone, Debug, Default)]
pub struct BenchRecord {
    /// Record name (also the `results/<name>.json` stem).
    pub name: String,
    /// Unit of the values (e.g. `"samples/sec"`).
    pub unit: String,
    /// Measurement rows in insertion order.
    pub rows: Vec<BenchRow>,
}

/// One measurement of a [`BenchRecord`].
#[derive(Clone, Debug)]
pub struct BenchRow {
    /// What was measured (e.g. `"LeNet F2"`).
    pub label: String,
    /// The measured value in [`BenchRecord::unit`]s.
    pub value: f64,
    /// Free-form numeric context (e.g. `("threads", 4.0)`).
    pub extra: Vec<(String, f64)>,
}

impl BenchRecord {
    /// Creates an empty record.
    pub fn new(name: impl Into<String>, unit: impl Into<String>) -> BenchRecord {
        BenchRecord {
            name: name.into(),
            unit: unit.into(),
            rows: Vec::new(),
        }
    }

    /// Appends one measurement row.
    pub fn push(&mut self, label: impl Into<String>, value: f64, extra: &[(&str, f64)]) {
        self.rows.push(BenchRow {
            label: label.into(),
            value,
            extra: extra.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }

    /// The record as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("unit", Json::from(self.unit.as_str())),
            (
                "rows",
                Json::arr(self.rows.iter().map(|r| {
                    let mut fields = vec![
                        ("label".to_string(), Json::from(r.label.as_str())),
                        ("value".to_string(), Json::from(r.value)),
                    ];
                    for (k, v) in &r.extra {
                        fields.push((k.clone(), Json::from(*v)));
                    }
                    Json::Obj(fields.into_iter().collect())
                })),
            ),
        ])
    }

    /// Writes the record to `results/<name>.json` (best effort).
    pub fn save(&self) {
        save_json(&self.name, &self.to_json());
    }
}

/// Writes a JSON record to `results/<name>.json` (best effort; prints the
/// path on success).
pub fn save_json(name: &str, value: &Json) {
    let dir = results_dir();
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if std::fs::write(&path, value.to_string_pretty()).is_ok() {
        println!("\n[saved {}]", path.display());
    }
}

/// Serializes a [`History`] as a JSON array of per-epoch records.
pub fn history_json(h: &History) -> Json {
    Json::arr(h.epochs.iter().map(|e| {
        Json::obj([
            ("epoch", Json::from(e.epoch)),
            ("train_loss", Json::from(e.train_loss)),
            ("train_acc", Json::from(e.train_acc)),
            ("val_loss", Json::from(e.val_loss)),
            ("val_acc", Json::from(e.val_acc)),
        ])
    }))
}

fn results_dir() -> PathBuf {
    // workspace root when run via cargo, cwd otherwise
    std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../../results"))
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Percent formatting helper.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_are_small() {
        let s = Scale::from_env();
        assert!(s.per_class <= 200);
        assert!(s.epochs <= 30);
    }

    #[test]
    fn prepare_splits_and_batches() {
        let ds = wa_data::cifar10_like(10, 8, 1);
        let (train, val) = prepare(&ds, 16, 2);
        let train_n: usize = train.iter().map(|(_, l)| l.len()).sum();
        let val_n: usize = val.iter().map(|(_, l)| l.len()).sum();
        assert_eq!(train_n + val_n, 100);
    }
}
