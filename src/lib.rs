//! # winograd-aware
//!
//! A from-scratch Rust reproduction of **“Searching for Winograd-aware
//! Quantized Networks”** (Fernandez-Marques, Whatmough, Mundy, Mattina —
//! MLSys 2020, [arXiv:2002.10711](https://arxiv.org/abs/2002.10711)).
//!
//! Winograd convolutions are the fastest known algorithm for the small
//! convolutions that dominate CNNs, but their transformation matrices
//! amplify rounding error so badly that they were unusable in quantized
//! (INT8) networks. The paper fixes this by evaluating the convolution
//! *explicitly* as `Y = Aᵀ[(G·g·Gᵀ) ⊙ (Bᵀ·d·B)]A` during training with
//! every intermediate fake-quantized — and, optionally, by *learning* the
//! transforms themselves (`-flex`) — then searches per-layer algorithms
//! with a latency-aware NAS (wiNAS).
//!
//! This facade re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`obs`] | dependency-free observability: metrics registry, stage spans, JSON logging, trace IDs |
//! | [`tensor`] | NCHW tensors, blocked GEMM, im2row/col2im, seeded RNG |
//! | [`quant`] | symmetric uniform fake-quantization with STE |
//! | [`winograd`] | exact Cook-Toom synthesis, canonical transforms, kernels, error analysis |
//! | [`nn`] | tape autograd, layers, optimizers, metrics |
//! | [`core`] | `WinogradAwareConv2d`, `ConvLayer` surgery, the training pipeline |
//! | [`data`] | synthetic CIFAR-10/100- and MNIST-shaped datasets |
//! | [`models`] | ResNet-18 (paper variant), LeNet, SqueezeNet, ResNeXt-20 |
//! | [`latency`] | analytical Cortex-A73/A53 latency model (Figure 7/8, Table 3) |
//! | [`nas`] | wiNAS search (Figure 9) |
//! | [`serve`] | socket serving front-end: model registry, request batching, one-document checkpoints |
//!
//! # Construction API
//!
//! Everything is built from **typed specs** with fallible builders:
//! `ConvSpec`, `LinearSpec`, `BatchNormSpec` and `ModelSpec` validate
//! every paper constraint (nonzero dims; Winograd ⇒ stride 1, odd
//! kernel, tile size `m ∈ {2, 4, 6}`) and return
//! `Result<_, WaError>` instead of panicking, so a serving system can
//! reject a bad layer config with an error.
//!
//! # Quickstart
//!
//! ```
//! use winograd_aware::core::{ConvAlgo, ConvLayer, ConvSpec, WaError};
//! use winograd_aware::nn::{Layer, QuantConfig, Tape};
//! use winograd_aware::quant::BitWidth;
//! use winograd_aware::tensor::SeededRng;
//!
//! // An INT8 Winograd-aware F4 layer with learnable transforms:
//! let mut rng = SeededRng::new(0);
//! let spec = ConvSpec::builder()
//!     .name("conv")
//!     .in_channels(8)
//!     .out_channels(8)
//!     .kernel(3)
//!     .algo(ConvAlgo::WinogradFlex { m: 4 })
//!     .quant(QuantConfig::uniform(BitWidth::INT8))
//!     .build()?;
//! let mut layer = ConvLayer::from_spec(&spec, &mut rng)?;
//! let mut tape = Tape::new();
//! let x = tape.leaf(rng.uniform_tensor(&[1, 8, 16, 16], -1.0, 1.0));
//! let y = layer.try_forward(&mut tape, x, true)?;
//! assert_eq!(tape.value(y).shape(), &[1, 8, 16, 16]);
//!
//! // Invalid configurations are rejected as values, not process aborts:
//! assert!(ConvSpec::builder()
//!     .in_channels(8)
//!     .out_channels(8)
//!     .stride(2)
//!     .algo(ConvAlgo::Winograd { m: 4 })
//!     .build()
//!     .is_err());
//! # Ok::<(), WaError>(())
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the regenerators of every table and figure in the paper.

/// Re-export of [`wa_obs`].
pub use wa_obs as obs;

/// Re-export of [`wa_tensor`].
pub use wa_tensor as tensor;

/// Re-export of [`wa_quant`].
pub use wa_quant as quant;

/// Re-export of [`wa_winograd`].
pub use wa_winograd as winograd;

/// Re-export of [`wa_nn`].
pub use wa_nn as nn;

/// Re-export of [`wa_core`].
pub use wa_core as core;

/// Re-export of [`wa_data`].
pub use wa_data as data;

/// Re-export of [`wa_models`].
pub use wa_models as models;

/// Re-export of [`wa_latency`].
pub use wa_latency as latency;

/// Re-export of [`wa_nas`].
pub use wa_nas as nas;

/// Re-export of [`wa_serve`].
pub use wa_serve as serve;

/// Re-export of [`wa_bench`].
pub use wa_bench as bench;
