//! # winograd-aware
//!
//! A from-scratch Rust reproduction of **“Searching for Winograd-aware
//! Quantized Networks”** (Fernandez-Marques, Whatmough, Mundy, Mattina —
//! MLSys 2020, [arXiv:2002.10711](https://arxiv.org/abs/2002.10711)).
//!
//! Winograd convolutions are the fastest known algorithm for the small
//! convolutions that dominate CNNs, but their transformation matrices
//! amplify rounding error so badly that they were unusable in quantized
//! (INT8) networks. The paper fixes this by evaluating the convolution
//! *explicitly* as `Y = Aᵀ[(G·g·Gᵀ) ⊙ (Bᵀ·d·B)]A` during training with
//! every intermediate fake-quantized — and, optionally, by *learning* the
//! transforms themselves (`-flex`) — then searches per-layer algorithms
//! with a latency-aware NAS (wiNAS).
//!
//! This facade re-exports the whole workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`tensor`] | NCHW tensors, blocked GEMM, im2row/col2im, seeded RNG |
//! | [`quant`] | symmetric uniform fake-quantization with STE |
//! | [`winograd`] | exact Cook-Toom synthesis, canonical transforms, kernels, error analysis |
//! | [`nn`] | tape autograd, layers, optimizers, metrics |
//! | [`core`] | `WinogradAwareConv2d`, `ConvLayer` surgery, the training pipeline |
//! | [`data`] | synthetic CIFAR-10/100- and MNIST-shaped datasets |
//! | [`models`] | ResNet-18 (paper variant), LeNet, SqueezeNet, ResNeXt-20 |
//! | [`latency`] | analytical Cortex-A73/A53 latency model (Figure 7/8, Table 3) |
//! | [`nas`] | wiNAS search (Figure 9) |
//!
//! # Quickstart
//!
//! ```
//! use winograd_aware::core::{ConvAlgo, ConvLayer};
//! use winograd_aware::nn::{Layer, QuantConfig, Tape};
//! use winograd_aware::quant::BitWidth;
//! use winograd_aware::tensor::SeededRng;
//!
//! // An INT8 Winograd-aware F4 layer with learnable transforms:
//! let mut rng = SeededRng::new(0);
//! let mut layer = ConvLayer::new(
//!     "conv", 8, 8, 3, 1, 1,
//!     ConvAlgo::WinogradFlex { m: 4 },
//!     QuantConfig::uniform(BitWidth::INT8),
//!     &mut rng,
//! );
//! let mut tape = Tape::new();
//! let x = tape.leaf(rng.uniform_tensor(&[1, 8, 16, 16], -1.0, 1.0));
//! let y = layer.forward(&mut tape, x, true);
//! assert_eq!(tape.value(y).shape(), &[1, 8, 16, 16]);
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the regenerators of every table and figure in the paper.

/// Re-export of [`wa_tensor`].
pub use wa_tensor as tensor;

/// Re-export of [`wa_quant`].
pub use wa_quant as quant;

/// Re-export of [`wa_winograd`].
pub use wa_winograd as winograd;

/// Re-export of [`wa_nn`].
pub use wa_nn as nn;

/// Re-export of [`wa_core`].
pub use wa_core as core;

/// Re-export of [`wa_data`].
pub use wa_data as data;

/// Re-export of [`wa_models`].
pub use wa_models as models;

/// Re-export of [`wa_latency`].
pub use wa_latency as latency;

/// Re-export of [`wa_nas`].
pub use wa_nas as nas;
